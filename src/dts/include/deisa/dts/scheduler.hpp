// The centralized scheduler — a C++ analogue of the dask.distributed
// scheduler, extended with the paper's external task state.
//
// Every incoming message consumes service time on a FIFO server (the
// Python scheduler is single-threaded); queueing on this server under
// per-timestep metadata load is what degrades DEISA1 in the paper's
// Figures 2a/3a/5, and what external tasks (DEISA2/3) avoid.
//
// Hot-path layout (see DESIGN.md "Scheduler data structures"): every key
// string is interned to a dense KeyId once at ingestion (KeyTable); task
// records live in a flat vector indexed by KeyId; dependencies are CSR
// slices of one shared pool; dependent edges are a pooled intrusive
// list; ready tasks chain through an intrusive O(1) FIFO queue; per-kind
// and per-state counters are flat arrays. Key strings are only rebuilt
// at the wire boundary (worker messages, replies, traces).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "deisa/dts/key_table.hpp"
#include "deisa/dts/messages.hpp"
#include "deisa/dts/policy.hpp"
#include "deisa/dts/task.hpp"
#include "deisa/exec/transport.hpp"
#include "deisa/exec/primitives.hpp"
#include "deisa/util/rng.hpp"

namespace deisa::dts {

struct SchedulerParams {
  /// Fixed service cost per incoming message. Calibrated to the Python
  /// dask scheduler (single-threaded, a few hundred ops/s under load).
  double service_base = 7e-3;
  /// Extra cost per task in an update_graph batch.
  double service_per_task = 1.2e-3;
  /// Extra cost per key touched (deps, scatter registrations, ...).
  double service_per_key = 0.15e-3;
  /// Extra cost per distributed-Queue operation (dask Queues are a
  /// scheduler extension with locking — far dearer than plain messages;
  /// the DEISA1 prototype drives 2·ranks of them per timestep).
  double service_queue_extra = 18e-3;
  /// Lognormal sigma on service time (0 = deterministic; the GC/GIL
  /// noise of the Python scheduler).
  double service_jitter_sigma = 0.0;
  std::uint64_t seed = 0x5c4ed;

  /// Placement policy behind decide_worker (see policy.hpp). kLocality
  /// is the paper's heuristic and the pre-seam behavior.
  SchedulingPolicy policy = SchedulingPolicy::kLocality;

  // ---- failure detection / recovery ----
  /// Declare a worker lost after this many seconds without a heartbeat;
  /// <= 0 disables detection (the seed behavior: heartbeats are counted
  /// but never acted on). Only enable when worker heartbeats are on.
  double heartbeat_timeout = 0.0;
  /// How often the failure detector scans deadlines; <= 0 derives a
  /// quarter of the heartbeat timeout.
  double failure_check_interval = 0.0;
  /// A lost external key re-armed for re-push errs out (poisoning its
  /// cone, so waiters fail instead of hanging) if the producer has not
  /// replayed it within this many seconds.
  double repush_timeout = 60.0;

  // ---- refcount GC ----
  /// Release a key's data (worker store + proxy deposit) once every
  /// consumer that ever depended on it has finished. Consumers are
  /// charged at graph-ingestion time and released on task completion;
  /// keys nothing ever depends on (gather targets, leaves) are never
  /// released. Cross-shard consumers are charged through the
  /// subscription slices and drained back via kShardKeyReleased, so the
  /// owner shard releases iff local AND remote consumers finished. Off
  /// by default: long-running DEISA2/3 loops opt in to hold bounded
  /// resident bytes. Not compatible with lineage recomputation after
  /// worker loss (released inputs cannot be re-read), so leave it off
  /// when running fault plans.
  bool release_consumed = false;
};

/// Scheduler-side task state machine: which transitions are legal. Every
/// state change goes through Scheduler::transition(), which enforces this
/// table — stale stimuli (late task_finished, duplicate pushes) are
/// dropped by the handlers before ever reaching an illegal edge.
bool transition_valid(TaskState from, TaskState to);

/// Plain-counter mirror of the scheduler.recovery.* / scheduler.stale.*
/// metrics, readable without a metrics registry installed (tests).
struct RecoveryCounters {
  std::uint64_t workers_lost = 0;        // workers declared dead
  std::uint64_t tasks_rerun = 0;         // in-flight tasks re-assigned
  std::uint64_t keys_recomputed = 0;     // lost computed keys re-executed
  std::uint64_t external_rearmed = 0;    // lost external keys re-armed
  std::uint64_t external_rerouted = 0;   // preselections moved off a dead
                                         // worker before any push
  std::uint64_t mirrors_rearmed = 0;     // remote mirrors parked back in
                                         // external awaiting re-announce
  std::uint64_t keys_lost = 0;           // unrecoverable (plain scatter)
  std::uint64_t repush_expired = 0;      // re-armed keys never replayed
  std::uint64_t stale_task_finished = 0; // late/duplicate reports dropped
  std::uint64_t stale_update_data = 0;   // pushes to terminal keys dropped
  std::uint64_t stale_heartbeats = 0;    // heartbeats from dead workers
};

class Scheduler {
public:
  Scheduler(exec::Executor& engine, exec::Transport& cluster, int node,
            SchedulerParams params);

  int node() const { return node_; }
  exec::Channel<SchedMsg>& inbox() { return inbox_; }
  void attach_workers(std::vector<WorkerRef> workers);

  /// Make this scheduler shard `shard_index` of `num_shards` co-located
  /// actors (see shard.hpp). `peer_inboxes[i]` is shard i's inbox (this
  /// shard's own entry included, never sent to). At num_shards == 1 this
  /// is a no-op: the single-scheduler hot path has no shard branches
  /// taken and the trace actor id stays "scheduler".
  void set_shard_context(int shard_index, int num_shards,
                         std::vector<exec::Channel<SchedMsg>*> peer_inboxes);
  int shard_index() const { return shard_index_; }
  int num_shards() const { return num_shards_; }
  /// Trace/span actor id ("scheduler", or "scheduler-<i>" when sharded).
  const std::string& actor() const { return actor_; }

  /// Main actor loop (spawned by the Runtime). Exits on kShutdown.
  exec::Co<void> run();
  /// Heartbeat-deadline monitor (spawned alongside run()). Exits
  /// immediately when params.heartbeat_timeout <= 0, and on every shard
  /// except shard 0 when sharded (heartbeats land on shard 0 only; it is
  /// the liveness authority and broadcasts kShardWorkerDead to peers).
  /// Suspected workers are reported through the scheduler's own inbox
  /// (kWorkerLost), so recovery serializes with every other handler.
  exec::Co<void> run_failure_detector();

  // ---- observability ----
  std::uint64_t messages_received(SchedMsgKind kind) const {
    return arrivals_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t total_messages() const { return total_messages_; }
  std::uint64_t retries_performed() const { return retries_performed_; }
  double total_service_time() const { return server_.total_busy_time(); }
  double total_queueing_time() const { return server_.total_waiting_time(); }
  TaskState state_of(const Key& key) const;
  bool knows(const Key& key) const { return keys_.find(key) != kNoKeyId; }
  std::size_t task_count() const { return records_.size(); }
  std::size_t count_in_state(TaskState s) const {
    return state_counts_[static_cast<std::size_t>(s)];
  }
  const RecoveryCounters& recovery() const { return recovery_; }

  // ---- refcount-GC introspection (property/stress tests) ----
  /// Consumers of `key` charged at ingestion and not yet finished.
  int pending_consumers(const Key& key) const;
  /// Whether the GC released `key`'s data (kMemory records only; the
  /// record itself is never erased).
  bool is_released(const Key& key) const;
  /// Keys whose data the GC has released so far.
  std::uint64_t keys_released() const { return keys_released_; }

  bool worker_is_dead(int worker) const {
    return worker >= 0 && static_cast<std::size_t>(worker) < dead_.size() &&
           dead_[static_cast<std::size_t>(worker)] != 0;
  }
  std::size_t live_workers() const { return workers_.size() - dead_count_; }

  /// Active placement policy (tests / tools).
  SchedulingPolicy policy() const { return policy_->kind(); }
  /// Tasks currently assigned to `worker` (kProcessing) — the queue
  /// depth the least-loaded policy ranks by.
  int inflight_on(int worker) const {
    return worker >= 0 && static_cast<std::size_t>(worker) < inflight_.size()
               ? inflight_[static_cast<std::size_t>(worker)]
               : 0;
  }

  // ---- leak / drain introspection (stress tests) ----
  /// Interned keys == task records ever created (records are never
  /// erased; a leak shows up as records stuck in a non-terminal state).
  std::size_t interned_keys() const { return keys_.size(); }
  /// Tasks currently chained in the ready queue (must be 0 between
  /// messages: every handler drains the queue before returning).
  std::size_t ready_queue_size() const { return ready_size_; }
  /// Blocked wait_key/gather reply channels across all records.
  std::size_t pending_waiters() const;
  /// Lost external keys still queued for a producer re-push.
  std::size_t repush_pending() const;

  // ---- cross-shard protocol introspection ----
  /// Dependency edges wired to a remote-owned mirror record (0 when
  /// single-sharded).
  std::uint64_t shard_remote_edges() const { return shard_remote_edges_; }
  /// kShardKeyDone notifications this shard sent to subscriber shards.
  std::uint64_t shard_notify_msgs() const { return shard_notify_msgs_; }
  /// kShardKeyReleased consumer-drain acks this shard sent to owners.
  std::uint64_t shard_release_acks() const { return shard_release_acks_; }

private:
  /// Where a record's data comes from — decides what a lost key implies:
  /// computed keys re-run via lineage, external keys re-arm for a
  /// producer re-push, plain scatters are unrecoverable. kRemote marks a
  /// mirror of a key owned by another shard: it completes only via
  /// kShardKeyDone (riding the external→memory edge) and is never
  /// assigned or re-pushed locally — a lost mirror parks back in
  /// external until the owner's recovery re-announces it.
  enum class Origin : std::uint8_t { kComputed, kScattered, kExternal,
                                     kRemote };

  static constexpr std::uint32_t kNoEdge = static_cast<std::uint32_t>(-1);

  /// Flat task record, indexed by KeyId in records_ — sized for cache
  /// residency (~72 bytes). The key string lives in keys_; the submitted
  /// TaskSpec stays in spec_arena_ (one wholesale vector move per
  /// update_graph) and the record points at it; cold per-task state
  /// (blocked waiters, error text) lives in side tables keyed by id.
  struct TaskRecord {
    TaskState state = TaskState::kWaiting;
    Origin origin = Origin::kComputed;
    int nwaiting = 0;  // unfinished dependencies
    int worker = -1;
    std::uint32_t dep_off = 0;    // CSR slice into deps_pool_
    std::uint32_t dep_count = 0;
    std::uint32_t dependents_head = kNoEdge;  // pooled intrusive list
    KeyId next_ready = kNoKeyId;  // intrusive ready-queue link
    int preferred_worker = -1;    // scheduler's (re-routable) copy
    int retries = 0;
    int attempts = 0;  // executions so far (retry support)
    int pusher_client = -1;  // client id of the bridge that completed an
                             // external key (for re-push routing)
    /// Refcount plane: consumers charged at ingestion (one per dependent
    /// edge, decremented as each dependent reaches a terminal state) and
    /// the historical total (a key nothing ever consumed is never
    /// released — it is a gather target or a leaf).
    int pending_consumers = 0;
    int ever_consumers = 0;
    /// GC released this key's data (state stays kMemory; the release is
    /// a storage fact, not a lifecycle transition).
    bool released = false;
    /// This task's input refcounts were already returned (guards against
    /// double decrements on poison-then-finish paths).
    bool inputs_released = false;
    std::uint64_t bytes = 0;
    double state_since = 0.0;  // sim time of the last transition (tracing)
    std::uint64_t rearm_epoch = 0;  // bumps on memory -> external re-arm
    /// Causality id of the handling span that moved this key to memory;
    /// forwarded as DepLocation::cause so dependents can record
    /// dep-ready -> execute edges (0 when untraced).
    std::uint64_t done_cause = 0;
    /// Execution payload (fn/io/cost/out_bytes) in spec_arena_; null for
    /// records the scheduler never assigns (external/scattered keys).
    TaskSpec* spec = nullptr;
  };

  /// Clients blocked in wait_key/gather on one record (cold path).
  struct WaiterList {
    std::vector<std::shared_ptr<exec::Channel<Ack>>> chans;
    std::vector<int> nodes;
  };

  struct Edge {  // pooled singly-linked dependent edge
    KeyId node = kNoKeyId;
    std::uint32_t next = kNoEdge;
  };

  double service_time(const SchedMsg& msg);
  /// Create the record for a freshly interned id (records_ grows in
  /// lockstep with the key table).
  TaskRecord& create_record(KeyId id);
  /// Record a task entering the state machine (tracing/metrics/state
  /// counts) — called after the creator set state/origin.
  void record_created(KeyId id, TaskRecord& rec);
  /// Move record `id` to state `to`, emitting the lifecycle event (a
  /// span for the time spent in the previous state), transition counters
  /// and the flat per-state counts.
  void transition(KeyId id, TaskRecord& rec, TaskState to);

  // ---- edge pool ----
  void add_dependent(TaskRecord& rec, KeyId dependent);
  /// Move rec's dependent list into `out` in original insertion order
  /// (the pooled list is LIFO; consumers need push order for
  /// deterministic cascade/assignment sequencing) and clear it.
  void take_dependents(TaskRecord& rec, std::vector<KeyId>& out);

  // ---- intrusive ready queue ----
  /// Transition `id` to kReady and chain it on the FIFO ready queue.
  void push_ready(KeyId id);
  KeyId pop_ready();
  /// Assign every queued ready task in FIFO order. Handlers call this
  /// before returning, so the queue is always empty between messages.
  exec::Co<void> drain_ready();

  exec::Co<void> handle(SchedMsg msg);
  exec::Co<void> handle_update_graph(SchedMsg& msg);
  /// Intern a mirror record for a dependency owned by shard
  /// `h % num_shards_`: state kExternal, origin kRemote, no spec. The
  /// subscriber slice of the same client batch registered a completion
  /// subscription with the owner, so kShardKeyDone will land here.
  KeyId create_remote_mirror(std::uint64_t h, const Key& dep);
  /// Owner side: register the subscriptions piggybacked on an
  /// update_graph slice (sub_keys/sub_shards); keys already terminal
  /// notify the subscriber immediately.
  exec::Co<void> process_shard_subscriptions(SchedMsg& msg);
  /// Send one kShardKeyDone{key, worker, bytes} (or erred + error) for
  /// record `id` to shard `shard`.
  exec::Co<void> notify_one_shard(int shard, KeyId id, bool erred);
  /// Notify and drop every subscriber of `id` (no-op unless sharded and
  /// subscribed). Called when a record reaches kMemory or kErred.
  exec::Co<void> notify_shard_subscribers(KeyId id);
  /// Subscriber side: complete (or poison) the local mirror record; a
  /// re-announcement for a mirror already in memory refreshes the cached
  /// location (post-recovery).
  exec::Co<void> handle_shard_key_done(SchedMsg& msg);
  /// Peer side of the liveness broadcast: mark the worker dead (epoch-
  /// guarded, idempotent) and run recovery over this shard's records.
  exec::Co<void> handle_shard_worker_dead(SchedMsg& msg);
  /// Owner side of the cross-shard refcount: a subscriber shard returned
  /// `bytes` drained consumer charges for `key`.
  exec::Co<void> handle_shard_key_released(SchedMsg& msg);
  exec::Co<void> handle_task_finished(SchedMsg& msg);
  exec::Co<void> handle_update_data(SchedMsg& msg);
  /// Register one pushed/scattered key on `worker` and return the ack
  /// code. Shared by the single-key path and the coalesced batch path
  /// (one kUpdateData carrying keys[]/sizes[] for a whole bridge push).
  exec::Co<int> update_data_one(Key key, int worker, std::uint64_t bytes,
                               bool external, int sender_client);
  void handle_create_external(SchedMsg& msg);
  exec::Co<void> handle_wait_key(SchedMsg& msg);
  exec::Co<void> handle_cancel(SchedMsg& msg);
  exec::Co<void> handle_variable(SchedMsg& msg);
  exec::Co<void> handle_queue(SchedMsg& msg);
  exec::Co<void> handle_worker_lost(SchedMsg& msg);
  exec::Co<void> handle_repush_keys(SchedMsg& msg);
  exec::Co<void> handle_repush_expired(SchedMsg& msg);

  /// Recovery core, run as (part of) a serialized handler: classify every
  /// key held by the dead worker, re-run lost computed keys via lineage,
  /// re-arm lost external keys for a producer re-push, err unrecoverable
  /// scatters (poisoning their cones), and re-assign in-flight tasks.
  exec::Co<void> recover_worker(int worker);
  /// Err task `id` and cascade the poison through its dependent cone,
  /// releasing any blocked waiters with kAckErred.
  exec::Co<void> poison_task(KeyId id, const std::string& error);
  /// Reply `value` to every client blocked on record `id` and drop them.
  exec::Co<void> release_waiters(KeyId id, int value);
  /// Watchdog for a re-armed external key: if the producer has not
  /// replayed it within params.repush_timeout, err it out (epoch guards
  /// against acting on a key that was replayed and re-armed again).
  exec::Co<void> repush_deadline(Key key, std::uint64_t epoch);
  /// Poke a producer's registered wake-up channel (no-op if it never
  /// pushed with one): re-push work is waiting for it.
  void notify_producer(int client);
  /// Round-robin over live workers only.
  int pick_live_worker();
  bool is_dead(int worker) const {
    return dead_[static_cast<std::size_t>(worker)] != 0;
  }

  /// Mark record `id` finished in memory and cascade: notify waiters,
  /// decrement dependents, assign newly-ready tasks. The
  /// external→memory transition of §2.2 lands here.
  exec::Co<void> finish_task(KeyId id, TaskRecord& rec, int worker,
                            std::uint64_t bytes, bool erred,
                            const std::string& error);
  /// Return the input refcounts a terminal task holds (one per dep) and
  /// release any input whose last consumer this was. Idempotent per
  /// record (inputs_released flag).
  exec::Co<void> release_task_inputs(TaskRecord& rec);
  /// Release `id`'s data if the refcount GC proves nothing will read it
  /// again: gc enabled, in memory, every historical consumer finished,
  /// no blocked waiters, and a live owner to send the release to.
  exec::Co<void> maybe_release(KeyId id, TaskRecord& rec);
  exec::Co<void> assign(KeyId id);
  int decide_worker(const TaskRecord& rec);

  /// The scheduler-backed PolicyContext: a narrow, stable view of live
  /// workers, queue depths, and the shared round-robin cursor handed to
  /// the placement policy (policies never see records or messages).
  struct PolicyCtx final : PolicyContext {
    Scheduler* s = nullptr;
    std::size_t worker_count() const override { return s->workers_.size(); }
    bool is_dead(int worker) const override { return s->is_dead(worker); }
    int inflight(int worker) const override { return s->inflight_on(worker); }
    int round_robin() override { return s->pick_live_worker(); }
  };
  exec::Co<void> reply_ack(std::shared_ptr<exec::Channel<Ack>> ch,
                          int dst_node, int code, std::uint64_t cause);
  exec::Co<void> reply_data(std::shared_ptr<exec::Channel<Data>> ch,
                           int dst_node, Data value);

  exec::Executor* engine_;
  exec::Transport* cluster_;
  int node_;
  SchedulerParams params_;
  exec::Channel<SchedMsg> inbox_;
  exec::FifoServer server_;
  util::Rng rng_;

  std::vector<WorkerRef> workers_;

  // ---- task table (all KeyId-indexed, parallel to keys_) ----
  KeyTable keys_;
  std::vector<TaskRecord> records_;
  std::vector<KeyId> deps_pool_;  // CSR backing store for spec deps
  std::vector<Edge> edge_pool_;   // pooled dependent-edge links
  // Submitted specs, one batch per update_graph, moved in wholesale;
  // element addresses are stable (inner vectors are never resized), so
  // records point straight at their spec. Dep strings are released once
  // resolved into the CSR pool.
  std::vector<std::vector<TaskSpec>> spec_arena_;
  std::unordered_map<KeyId, WaiterList> waiters_;  // cold: blocked clients
  std::unordered_map<KeyId, std::string> errors_;  // cold: failure text
  KeyId ready_head_ = kNoKeyId;   // intrusive FIFO of kReady tasks
  KeyId ready_tail_ = kNoKeyId;
  std::size_t ready_size_ = 0;
  std::array<std::size_t, kNumTaskStates> state_counts_{};
  // Handler-local scratch, reused across messages to stay allocation-free
  // on the hot path (handlers are fully serialized by run()).
  std::vector<KeyId> scratch_dependents_;
  std::vector<KeyId> scratch_batch_;
  std::vector<int> scratch_owner_;
  std::vector<std::uint64_t> scratch_owner_bytes_;

  std::size_t rr_next_worker_ = 0;
  std::unique_ptr<ISchedulingPolicy> policy_;
  PolicyCtx policy_ctx_;
  // Per-worker kProcessing task counts, maintained by transition() (the
  // single choke point for state changes; rec.worker is always the
  // assigned worker when a task enters or leaves kProcessing).
  std::vector<int> inflight_;

  struct VariableSlot {
    bool set = false;
    Data value;
    std::vector<std::pair<std::shared_ptr<exec::Channel<Data>>, int>> waiters;
  };
  std::unordered_map<std::string, VariableSlot> variables_;

  struct QueueSlot {
    std::deque<Data> items;
    std::deque<std::pair<std::shared_ptr<exec::Channel<Data>>, int>> waiters;
  };
  std::unordered_map<std::string, QueueSlot> queues_;

  std::array<std::uint64_t, kSchedMsgKindCount> arrivals_{};
  std::uint64_t total_messages_ = 0;
  std::uint64_t retries_performed_ = 0;
  std::uint64_t keys_released_ = 0;
  /// Causality id of the handling span of the message currently being
  /// processed (0 untraced); stamped into outgoing assigns and recorded
  /// as done_cause when a key completes.
  std::uint64_t current_cause_ = 0;
  bool stopping_ = false;

  // ---- failure detection / recovery state (worker-id indexed) ----
  std::vector<std::uint8_t> dead_;       // declared lost
  std::vector<std::uint8_t> suspected_;  // reported, recovery pending
  std::size_t dead_count_ = 0;
  std::vector<double> last_heartbeat_;   // sim time; <0 = never seen
  // Which keys' data lives on each worker (memory-state records only).
  // recover_worker reads this instead of scanning every record.
  std::vector<std::unordered_set<KeyId>> has_what_;
  // Lost external keys awaiting a replay, grouped by producing client
  // (each bridge holds its own replay buffer). The producer learns about
  // them via kAckRepushPending — piggybacked on its next push ack, or
  // poked through its registered notify channel when no further push is
  // coming — and drains the list with kRepushKeys.
  std::unordered_map<int, std::vector<KeyId>> repush_;
  // Latest wake-up channel per producing client (see SchedMsg::notify).
  std::unordered_map<int, std::shared_ptr<exec::Channel<int>>> producer_notify_;
  RecoveryCounters recovery_;

  // ---- cross-shard protocol state (see shard.hpp) ----
  int shard_index_ = 0;
  int num_shards_ = 1;
  std::string actor_ = "scheduler";  // per-shard trace/span actor id
  std::vector<exec::Channel<SchedMsg>*> shard_peers_;
  /// Subscriber shards awaiting completion of a local key (cold: only
  /// keys another shard depends on ever get an entry). Persistent: a key
  /// recovered after worker loss re-announces through the same list.
  std::unordered_map<KeyId, std::vector<int>> shard_subs_;
  /// Owner side of the cross-shard refcount: outstanding remote consumer
  /// charges per local key (charged by subscription slices, drained by
  /// kShardKeyReleased acks; transiently negative when an ack outruns
  /// its charging slice). A non-zero balance blocks the GC release.
  std::unordered_map<KeyId, int> shard_remote_counts_;
  /// Subscriber side: consumer charges already acked back to the owner
  /// per mirror record (ever_consumers - acked = still to drain).
  std::unordered_map<KeyId, int> shard_drain_acked_;
  std::uint64_t shard_remote_edges_ = 0;
  std::uint64_t shard_notify_msgs_ = 0;
  std::uint64_t shard_release_acks_ = 0;
  /// Liveness-broadcast epoch: shard 0 stamps each kShardWorkerDead with
  /// a fresh epoch; peers drop anything at or below the last one seen.
  std::uint64_t shard_death_epoch_ = 0;
  std::uint64_t shard_last_death_epoch_ = 0;
};

}  // namespace deisa::dts
