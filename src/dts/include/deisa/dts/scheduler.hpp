// The centralized scheduler — a C++ analogue of the dask.distributed
// scheduler, extended with the paper's external task state.
//
// Every incoming message consumes service time on a FIFO server (the
// Python scheduler is single-threaded); queueing on this server under
// per-timestep metadata load is what degrades DEISA1 in the paper's
// Figures 2a/3a/5, and what external tasks (DEISA2/3) avoid.
#pragma once

#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "deisa/dts/messages.hpp"
#include "deisa/dts/task.hpp"
#include "deisa/net/cluster.hpp"
#include "deisa/sim/primitives.hpp"
#include "deisa/util/rng.hpp"

namespace deisa::dts {

struct SchedulerParams {
  /// Fixed service cost per incoming message. Calibrated to the Python
  /// dask scheduler (single-threaded, a few hundred ops/s under load).
  double service_base = 7e-3;
  /// Extra cost per task in an update_graph batch.
  double service_per_task = 1.2e-3;
  /// Extra cost per key touched (deps, scatter registrations, ...).
  double service_per_key = 0.15e-3;
  /// Extra cost per distributed-Queue operation (dask Queues are a
  /// scheduler extension with locking — far dearer than plain messages;
  /// the DEISA1 prototype drives 2·ranks of them per timestep).
  double service_queue_extra = 18e-3;
  /// Lognormal sigma on service time (0 = deterministic; the GC/GIL
  /// noise of the Python scheduler).
  double service_jitter_sigma = 0.0;
  std::uint64_t seed = 0x5c4ed;
};

class Scheduler {
public:
  Scheduler(sim::Engine& engine, net::Cluster& cluster, int node,
            SchedulerParams params);

  int node() const { return node_; }
  sim::Channel<SchedMsg>& inbox() { return inbox_; }
  void attach_workers(std::vector<WorkerRef> workers);

  /// Main actor loop (spawned by the Runtime). Exits on kShutdown.
  sim::Co<void> run();

  // ---- observability ----
  std::uint64_t messages_received(SchedMsgKind kind) const;
  std::uint64_t total_messages() const { return total_messages_; }
  std::uint64_t retries_performed() const { return retries_performed_; }
  double total_service_time() const { return server_.total_busy_time(); }
  double total_queueing_time() const { return server_.total_waiting_time(); }
  TaskState state_of(const Key& key) const;
  bool knows(const Key& key) const { return records_.count(key) != 0; }
  std::size_t task_count() const { return records_.size(); }
  std::size_t count_in_state(TaskState s) const;

private:
  struct TaskRecord {
    TaskSpec spec;
    TaskState state = TaskState::kWaiting;
    double state_since = 0.0;  // sim time of the last transition (tracing)
    int nwaiting = 0;  // unfinished dependencies
    std::vector<Key> dependents;
    int worker = -1;
    std::uint64_t bytes = 0;
    int attempts = 0;  // executions so far (retry support)
    std::string error;
    std::vector<std::shared_ptr<sim::Channel<int>>> waiters;
    std::vector<int> waiter_nodes;
  };

  double service_time(const SchedMsg& msg);
  /// Record a task entering the state machine (tracing/metrics).
  void record_created(const Key& key, TaskRecord& rec);
  /// Move `rec` to state `to`, emitting the lifecycle event (a span for
  /// the time spent in the previous state) and transition counters.
  void transition(const Key& key, TaskRecord& rec, TaskState to);
  sim::Co<void> handle(SchedMsg msg);
  sim::Co<void> handle_update_graph(SchedMsg& msg);
  sim::Co<void> handle_task_finished(SchedMsg& msg);
  sim::Co<void> handle_update_data(SchedMsg& msg);
  void handle_create_external(SchedMsg& msg);
  sim::Co<void> handle_wait_key(SchedMsg& msg);
  sim::Co<void> handle_cancel(SchedMsg& msg);
  sim::Co<void> handle_variable(SchedMsg& msg);
  sim::Co<void> handle_queue(SchedMsg& msg);

  /// Mark `rec` finished in memory and cascade: notify waiters, decrement
  /// dependents, assign newly-ready tasks. The external→memory transition
  /// of §2.2 lands here.
  sim::Co<void> finish_task(const Key& key, TaskRecord& rec, int worker,
                            std::uint64_t bytes, bool erred,
                            const std::string& error);
  sim::Co<void> assign(const Key& key);
  int decide_worker(const TaskRecord& rec) const;
  sim::Co<void> reply_int(std::shared_ptr<sim::Channel<int>> ch, int dst_node,
                          int value);
  sim::Co<void> reply_data(std::shared_ptr<sim::Channel<Data>> ch,
                           int dst_node, Data value);

  sim::Engine* engine_;
  net::Cluster* cluster_;
  int node_;
  SchedulerParams params_;
  sim::Channel<SchedMsg> inbox_;
  sim::FifoServer server_;
  util::Rng rng_;

  std::vector<WorkerRef> workers_;
  std::unordered_map<Key, TaskRecord> records_;
  std::size_t rr_next_worker_ = 0;

  struct VariableSlot {
    bool set = false;
    Data value;
    std::vector<std::pair<std::shared_ptr<sim::Channel<Data>>, int>> waiters;
  };
  std::map<std::string, VariableSlot> variables_;

  struct QueueSlot {
    std::deque<Data> items;
    std::deque<std::pair<std::shared_ptr<sim::Channel<Data>>, int>> waiters;
  };
  std::map<std::string, QueueSlot> queues_;

  std::map<SchedMsgKind, std::uint64_t> arrivals_;
  std::uint64_t total_messages_ = 0;
  std::uint64_t retries_performed_ = 0;
  bool stopping_ = false;
};

}  // namespace deisa::dts
