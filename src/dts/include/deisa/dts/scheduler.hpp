// The centralized scheduler — a C++ analogue of the dask.distributed
// scheduler, extended with the paper's external task state.
//
// Every incoming message consumes service time on a FIFO server (the
// Python scheduler is single-threaded); queueing on this server under
// per-timestep metadata load is what degrades DEISA1 in the paper's
// Figures 2a/3a/5, and what external tasks (DEISA2/3) avoid.
#pragma once

#include <deque>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "deisa/dts/messages.hpp"
#include "deisa/dts/task.hpp"
#include "deisa/net/cluster.hpp"
#include "deisa/sim/primitives.hpp"
#include "deisa/util/rng.hpp"

namespace deisa::dts {

struct SchedulerParams {
  /// Fixed service cost per incoming message. Calibrated to the Python
  /// dask scheduler (single-threaded, a few hundred ops/s under load).
  double service_base = 7e-3;
  /// Extra cost per task in an update_graph batch.
  double service_per_task = 1.2e-3;
  /// Extra cost per key touched (deps, scatter registrations, ...).
  double service_per_key = 0.15e-3;
  /// Extra cost per distributed-Queue operation (dask Queues are a
  /// scheduler extension with locking — far dearer than plain messages;
  /// the DEISA1 prototype drives 2·ranks of them per timestep).
  double service_queue_extra = 18e-3;
  /// Lognormal sigma on service time (0 = deterministic; the GC/GIL
  /// noise of the Python scheduler).
  double service_jitter_sigma = 0.0;
  std::uint64_t seed = 0x5c4ed;

  // ---- failure detection / recovery ----
  /// Declare a worker lost after this many seconds without a heartbeat;
  /// <= 0 disables detection (the seed behavior: heartbeats are counted
  /// but never acted on). Only enable when worker heartbeats are on.
  double heartbeat_timeout = 0.0;
  /// How often the failure detector scans deadlines; <= 0 derives a
  /// quarter of the heartbeat timeout.
  double failure_check_interval = 0.0;
  /// A lost external key re-armed for re-push errs out (poisoning its
  /// cone, so waiters fail instead of hanging) if the producer has not
  /// replayed it within this many seconds.
  double repush_timeout = 60.0;
};

/// Scheduler-side task state machine: which transitions are legal. Every
/// state change goes through Scheduler::transition(), which enforces this
/// table — stale stimuli (late task_finished, duplicate pushes) are
/// dropped by the handlers before ever reaching an illegal edge.
bool transition_valid(TaskState from, TaskState to);

/// Plain-counter mirror of the scheduler.recovery.* / scheduler.stale.*
/// metrics, readable without a metrics registry installed (tests).
struct RecoveryCounters {
  std::uint64_t workers_lost = 0;        // workers declared dead
  std::uint64_t tasks_rerun = 0;         // in-flight tasks re-assigned
  std::uint64_t keys_recomputed = 0;     // lost computed keys re-executed
  std::uint64_t external_rearmed = 0;    // lost external keys re-armed
  std::uint64_t external_rerouted = 0;   // preselections moved off a dead
                                         // worker before any push
  std::uint64_t keys_lost = 0;           // unrecoverable (plain scatter)
  std::uint64_t repush_expired = 0;      // re-armed keys never replayed
  std::uint64_t stale_task_finished = 0; // late/duplicate reports dropped
  std::uint64_t stale_update_data = 0;   // pushes to terminal keys dropped
  std::uint64_t stale_heartbeats = 0;    // heartbeats from dead workers
};

class Scheduler {
public:
  Scheduler(sim::Engine& engine, net::Cluster& cluster, int node,
            SchedulerParams params);

  int node() const { return node_; }
  sim::Channel<SchedMsg>& inbox() { return inbox_; }
  void attach_workers(std::vector<WorkerRef> workers);

  /// Main actor loop (spawned by the Runtime). Exits on kShutdown.
  sim::Co<void> run();
  /// Heartbeat-deadline monitor (spawned alongside run()). Exits
  /// immediately when params.heartbeat_timeout <= 0. Suspected workers
  /// are reported through the scheduler's own inbox (kWorkerLost), so
  /// recovery serializes with every other handler.
  sim::Co<void> run_failure_detector();

  // ---- observability ----
  std::uint64_t messages_received(SchedMsgKind kind) const;
  std::uint64_t total_messages() const { return total_messages_; }
  std::uint64_t retries_performed() const { return retries_performed_; }
  double total_service_time() const { return server_.total_busy_time(); }
  double total_queueing_time() const { return server_.total_waiting_time(); }
  TaskState state_of(const Key& key) const;
  bool knows(const Key& key) const { return records_.count(key) != 0; }
  std::size_t task_count() const { return records_.size(); }
  std::size_t count_in_state(TaskState s) const;
  const RecoveryCounters& recovery() const { return recovery_; }
  bool worker_is_dead(int worker) const {
    return dead_workers_.count(worker) != 0;
  }
  std::size_t live_workers() const {
    return workers_.size() - dead_workers_.size();
  }

private:
  /// Where a record's data comes from — decides what a lost key implies:
  /// computed keys re-run via lineage, external keys re-arm for a
  /// producer re-push, plain scatters are unrecoverable.
  enum class Origin { kComputed, kScattered, kExternal };

  struct TaskRecord {
    TaskSpec spec;
    TaskState state = TaskState::kWaiting;
    Origin origin = Origin::kComputed;
    double state_since = 0.0;  // sim time of the last transition (tracing)
    int nwaiting = 0;  // unfinished dependencies
    std::vector<Key> dependents;
    int worker = -1;
    std::uint64_t bytes = 0;
    int attempts = 0;  // executions so far (retry support)
    int pusher_client = -1;  // client id of the bridge that completed an
                             // external key (for re-push routing)
    std::uint64_t rearm_epoch = 0;  // bumps on memory -> external re-arm
    std::string error;
    std::vector<std::shared_ptr<sim::Channel<int>>> waiters;
    std::vector<int> waiter_nodes;
  };

  double service_time(const SchedMsg& msg);
  /// Record a task entering the state machine (tracing/metrics).
  void record_created(const Key& key, TaskRecord& rec);
  /// Move `rec` to state `to`, emitting the lifecycle event (a span for
  /// the time spent in the previous state) and transition counters.
  void transition(const Key& key, TaskRecord& rec, TaskState to);
  sim::Co<void> handle(SchedMsg msg);
  sim::Co<void> handle_update_graph(SchedMsg& msg);
  sim::Co<void> handle_task_finished(SchedMsg& msg);
  sim::Co<void> handle_update_data(SchedMsg& msg);
  void handle_create_external(SchedMsg& msg);
  sim::Co<void> handle_wait_key(SchedMsg& msg);
  sim::Co<void> handle_cancel(SchedMsg& msg);
  sim::Co<void> handle_variable(SchedMsg& msg);
  sim::Co<void> handle_queue(SchedMsg& msg);
  sim::Co<void> handle_worker_lost(SchedMsg& msg);
  sim::Co<void> handle_repush_keys(SchedMsg& msg);
  sim::Co<void> handle_repush_expired(SchedMsg& msg);

  /// Recovery core, run as (part of) a serialized handler: classify every
  /// key held by the dead worker, re-run lost computed keys via lineage,
  /// re-arm lost external keys for a producer re-push, err unrecoverable
  /// scatters (poisoning their cones), and re-assign in-flight tasks.
  sim::Co<void> recover_worker(int worker);
  /// Err `key` and cascade the poison through its dependent cone,
  /// releasing any blocked waiters with kAckErred.
  sim::Co<void> poison_task(const Key& key, const std::string& error);
  /// Watchdog for a re-armed external key: if the producer has not
  /// replayed it within params.repush_timeout, err it out (epoch guards
  /// against acting on a key that was replayed and re-armed again).
  sim::Co<void> repush_deadline(Key key, std::uint64_t epoch);
  /// Poke a producer's registered wake-up channel (no-op if it never
  /// pushed with one): re-push work is waiting for it.
  void notify_producer(int client);
  /// Round-robin over live workers only.
  int pick_live_worker();

  /// Mark `rec` finished in memory and cascade: notify waiters, decrement
  /// dependents, assign newly-ready tasks. The external→memory transition
  /// of §2.2 lands here.
  sim::Co<void> finish_task(const Key& key, TaskRecord& rec, int worker,
                            std::uint64_t bytes, bool erred,
                            const std::string& error);
  sim::Co<void> assign(const Key& key);
  int decide_worker(const TaskRecord& rec);
  sim::Co<void> reply_int(std::shared_ptr<sim::Channel<int>> ch, int dst_node,
                          int value);
  sim::Co<void> reply_data(std::shared_ptr<sim::Channel<Data>> ch,
                           int dst_node, Data value);

  sim::Engine* engine_;
  net::Cluster* cluster_;
  int node_;
  SchedulerParams params_;
  sim::Channel<SchedMsg> inbox_;
  sim::FifoServer server_;
  util::Rng rng_;

  std::vector<WorkerRef> workers_;
  std::unordered_map<Key, TaskRecord> records_;
  std::size_t rr_next_worker_ = 0;

  struct VariableSlot {
    bool set = false;
    Data value;
    std::vector<std::pair<std::shared_ptr<sim::Channel<Data>>, int>> waiters;
  };
  std::map<std::string, VariableSlot> variables_;

  struct QueueSlot {
    std::deque<Data> items;
    std::deque<std::pair<std::shared_ptr<sim::Channel<Data>>, int>> waiters;
  };
  std::map<std::string, QueueSlot> queues_;

  std::map<SchedMsgKind, std::uint64_t> arrivals_;
  std::uint64_t total_messages_ = 0;
  std::uint64_t retries_performed_ = 0;
  bool stopping_ = false;

  // ---- failure detection / recovery state ----
  std::set<int> dead_workers_;             // worker ids declared lost
  std::map<int, double> last_heartbeat_;   // worker id -> sim time
  std::set<int> suspected_;                // reported, recovery pending
  // Lost external keys awaiting a replay, grouped by producing client
  // (each bridge holds its own replay buffer). The producer learns about
  // them via kAckRepushPending — piggybacked on its next push ack, or
  // poked through its registered notify channel when no further push is
  // coming — and drains the list with kRepushKeys.
  std::map<int, std::vector<Key>> repush_;
  // Latest wake-up channel per producing client (see SchedMsg::notify).
  std::map<int, std::shared_ptr<sim::Channel<int>>> producer_notify_;
  RecoveryCounters recovery_;
};

}  // namespace deisa::dts
