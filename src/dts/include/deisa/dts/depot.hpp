// Shared payload depot backing the proxy data plane. Producers deposit
// payloads once (keyed by dts::Key) and circulate ProxyHandle tokens;
// consumers pull a copy on first dereference — a shared_ptr alias on the
// sim substrate, a shared-scratch read on the threaded substrate (both
// substrates share one address space, so a depot pull only pays modeled
// transfer time when the handle's origin is a different node).
//
// Lifetime: a deposit stays resident until the refcount GC releases the
// key (the owner worker's kReleaseKey handling erases the depot entry),
// so any number of consumers can pull the same deposit. Mutex-protected
// because the threaded substrate dereferences from real worker threads.
#pragma once

#include <mutex>
#include <unordered_map>

#include "deisa/dts/task.hpp"

namespace deisa::dts {

/// One depot per runtime (shared by all clients and workers on the
/// proxy plane). Tracks resident and peak bytes so the harness can
/// prove bounded memory under the refcount GC.
class ProxyDepot {
public:
  /// Stores `data` under `key`, recording the depositing node. A
  /// re-deposit (e.g. a fault-recovery re-push) overwrites the old
  /// entry.
  void deposit(const Key& key, Data data, int origin_node) {
    std::lock_guard<std::mutex> lk(mu_);
    auto [it, inserted] = entries_.try_emplace(key);
    if (!inserted) resident_bytes_ -= it->second.data.bytes;
    resident_bytes_ += data.bytes;
    if (resident_bytes_ > peak_bytes_) peak_bytes_ = resident_bytes_;
    it->second.data = std::move(data);
    it->second.origin_node = origin_node;
  }

  /// Copies the deposit out (cheap: Data is a shared_ptr alias). Returns
  /// false if the key is not resident — the caller raced a release,
  /// which the scheduler-side refcount plane is supposed to prevent.
  bool fetch(const Key& key, Data& out) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return false;
    out = it->second.data;
    return true;
  }

  bool contains(const Key& key) const {
    std::lock_guard<std::mutex> lk(mu_);
    return entries_.count(key) != 0;
  }

  /// Drops the deposit (refcount GC release). Returns the freed bytes.
  std::uint64_t erase(const Key& key) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return 0;
    const std::uint64_t freed = it->second.data.bytes;
    resident_bytes_ -= freed;
    entries_.erase(it);
    return freed;
  }

  std::uint64_t resident_bytes() const {
    std::lock_guard<std::mutex> lk(mu_);
    return resident_bytes_;
  }
  std::uint64_t peak_bytes() const {
    std::lock_guard<std::mutex> lk(mu_);
    return peak_bytes_;
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return entries_.size();
  }

private:
  struct Entry {
    Data data;
    int origin_node = -1;
  };
  mutable std::mutex mu_;
  std::unordered_map<Key, Entry> entries_;
  std::uint64_t resident_bytes_ = 0;
  std::uint64_t peak_bytes_ = 0;
};

}  // namespace deisa::dts
