// Pluggable scheduling policies — the seam carved out of
// Scheduler::decide_worker. The scheduler owns every mechanism (record
// table, scratch owner accumulation, the shared round-robin cursor,
// failure bookkeeping); a policy is pure placement: given one ready
// task's locality/cost view and a narrow context over live-worker
// state, return the worker to run it on.
//
// Contract (what the corpus property suite enforces): a policy chooses
// *where* work runs, never *what* runs or *what it computes* — all
// policies must produce byte-identical analytics outputs on both
// substrates; only makespans may differ. Policies are called from the
// scheduler strand only, so they may keep internal state (the HEFT
// finish-time accumulator, e.g.) without locking, and that state must
// be derived purely from the pick sequence so runs stay deterministic.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace deisa::dts {

enum class SchedulingPolicy : std::uint8_t {
  /// The paper's behavior: the live worker already holding the most
  /// input bytes; no owner -> round-robin. Bit-identical to the
  /// pre-seam decide_worker by construction.
  kLocality,
  /// Ignore locality entirely: next live worker in rotation. The
  /// baseline every other policy is measured against.
  kRoundRobin,
  /// Fewest tasks currently in flight (queue-depth aware via the
  /// scheduler's per-worker inflight counters); ties to the lowest id.
  kLeastLoaded,
  /// HEFT-style earliest-finish-time rank: per-worker virtual
  /// ready-times plus a modeled transfer cost for input bytes not
  /// already resident, using the same spec cost model the service/wire
  /// layers memoize (spec_dep_total). Deliberately wall-clock-free so
  /// placement is identical on the sim and threads substrates.
  kHeft,
};
inline constexpr std::size_t kNumSchedulingPolicies = 4;

const char* to_string(SchedulingPolicy p);
/// Parse "locality" | "round-robin" | "least-loaded" | "heft"
/// (the --policy=/policy: spellings). DEISA_CHECKs on unknown names.
SchedulingPolicy policy_of(const std::string& name);

/// One ready task as a policy sees it: parallel owner/bytes arrays
/// (live workers only, dead owners and unplaced deps already filtered
/// by the scheduler, insertion-ordered by dep position) plus the spec
/// cost model. Pointers borrow the scheduler's per-call scratch.
struct TaskView {
  const int* owners = nullptr;
  const std::uint64_t* owner_bytes = nullptr;
  std::size_t owner_count = 0;
  /// Sum of owner_bytes: total live-resident input bytes.
  std::uint64_t dep_bytes_total = 0;
  /// Modeled execution seconds from the TaskSpec (0 for functional
  /// tasks, which charge real compute instead).
  double cost = 0.0;
  std::uint64_t out_bytes = 0;
};

/// What a policy may ask of the scheduler. round_robin() consumes the
/// scheduler's single rotation cursor — shared with the recovery
/// re-routing paths — which is exactly what makes the locality policy's
/// fallback bit-identical to the pre-seam code.
class PolicyContext {
public:
  virtual ~PolicyContext() = default;
  virtual std::size_t worker_count() const = 0;
  virtual bool is_dead(int worker) const = 0;
  /// Tasks assigned to `worker` and not yet finished (kProcessing).
  virtual int inflight(int worker) const = 0;
  /// Next live worker in the scheduler-wide rotation (advances it).
  virtual int round_robin() = 0;
};

class ISchedulingPolicy {
public:
  virtual ~ISchedulingPolicy() = default;
  virtual SchedulingPolicy kind() const = 0;
  /// Pick a live worker for one ready task. The scheduler has already
  /// resolved preferred_worker (an external-task preselection overrides
  /// every policy) and guarantees at least one live worker exists.
  virtual int pick(const TaskView& task, PolicyContext& ctx) = 0;
};

std::unique_ptr<ISchedulingPolicy> make_policy(SchedulingPolicy p);

/// Nominal link bandwidth (bytes/s) behind the HEFT transfer estimate —
/// the sim's software-stack bandwidth scale. An estimate used for
/// *ranking* only; real transfer time is charged by the transport.
inline constexpr double kPolicyModelBandwidth = 0.55e9;

}  // namespace deisa::dts
