// Worker actor: executes tasks, stores results, serves peer fetches, and
// accepts direct data pushes (the scatter path DEISA bridges use to move
// simulation blocks into the cluster without staging through the
// scheduler).
#pragma once

#include <unordered_map>

#include "deisa/dts/depot.hpp"
#include "deisa/dts/messages.hpp"
#include "deisa/dts/task.hpp"
#include "deisa/exec/transport.hpp"
#include "deisa/exec/primitives.hpp"

namespace deisa::dts {

struct WorkerParams {
  int nthreads = 1;
  /// Seconds between heartbeats to the scheduler; <= 0 disables.
  double heartbeat_interval = 1.0;
  /// Peer dependency fetches a worker keeps in flight at once. Fetches of
  /// a compute request overlap up to this bound (1 restores the old
  /// strictly sequential behavior); in-flight fetches of the same key are
  /// shared, never duplicated.
  int max_concurrent_fetches = 8;
  /// How pushed payloads reach this worker: eager bytes (kCopy) or
  /// lazily-resolved proxy handles (kProxy). Must match the clients'.
  DataPlane data_plane = DataPlane::kCopy;
};

class Worker {
public:
  Worker(exec::Executor& engine, exec::Transport& cluster, int id, int node,
         WorkerParams params);

  int id() const { return id_; }
  int node() const { return node_; }
  exec::Channel<WorkerMsg>& inbox() { return inbox_; }

  /// Wire up peers and the scheduler (done once by the Runtime).
  void attach(int scheduler_node, exec::Channel<SchedMsg>* scheduler_inbox,
              std::vector<WorkerRef> peers);

  /// Scheduler-shard routing table (Runtime, only at shards > 1): task
  /// completions are routed to the shard owning the key; keyless traffic
  /// (heartbeats) keeps going to shard 0 via scheduler_inbox_.
  void set_shards(std::vector<exec::Channel<SchedMsg>*> inboxes) {
    shard_inboxes_ = std::move(inboxes);
  }

  /// Shared payload depot of the proxy data plane (nullptr on kCopy).
  void set_depot(ProxyDepot* depot) { depot_ = depot; }

  /// Main actor loop; exits on kShutdown.
  exec::Co<void> run();
  /// Heartbeat loop (spawned alongside run()); exits once shutdown.
  exec::Co<void> run_heartbeats();

  /// Fail-stop crash (fault injection): the worker stops heartbeating,
  /// drops every queued and future message, abandons in-flight computes,
  /// and loses its store. The actor stays allocated — a crashed worker is
  /// a black hole, not a dangling pointer.
  void crash();
  bool alive() const { return alive_; }

  // ---- observability ----
  std::uint64_t tasks_executed() const { return tasks_executed_; }
  /// Cumulative bytes ever stored (throughput measure). Excludes cached
  /// copies of peer-fetched dependencies — see peer_fetch_cached_bytes().
  std::uint64_t bytes_stored() const { return bytes_stored_; }
  /// Cumulative bytes cached locally from peer fetches. Kept separate
  /// from bytes_stored() so dependency traffic does not inflate the
  /// worker's apparent store throughput.
  std::uint64_t peer_fetch_cached_bytes() const {
    return peer_fetch_cached_bytes_;
  }
  /// Peer-fetch requests actually sent on the wire (cache hits and
  /// joined in-flight fetches never issue one).
  std::uint64_t peer_fetches() const { return peer_fetches_; }
  /// Fetches satisfied by joining a request already in flight.
  std::uint64_t peer_fetches_shared() const { return peer_fetches_shared_; }
  /// Fetches satisfied by an earlier fetch's cached copy.
  std::uint64_t peer_fetch_cache_hits() const {
    return peer_fetch_cache_hits_;
  }
  /// Bytes currently resident in the worker's store.
  std::uint64_t memory_bytes() const { return memory_bytes_; }
  /// High-water mark of memory_bytes() over the worker's lifetime. The
  /// refcount-GC stress test asserts this stays bounded as timesteps grow.
  std::uint64_t peak_memory_bytes() const { return peak_memory_bytes_; }
  std::size_t keys_in_memory() const { return store_.size(); }
  /// Unresolved proxy handles currently registered (proxy plane only).
  std::size_t keys_proxied() const { return proxy_.size(); }
  /// Keys dropped by scheduler-directed GC releases.
  std::uint64_t keys_released() const { return keys_released_; }
  /// Drop a key from local memory (scheduler-directed release).
  bool release_key(const Key& key);
  bool has_local(const Key& key) const { return store_.count(key) != 0; }
  double busy_time() const { return cpu_.total_busy_time(); }

  /// Local blocking lookup: waits until `key` is locally readable and
  /// returns a non-owning reference into the store (stable until the key
  /// is released — callers copy the Data struct, a cheap shared_ptr
  /// alias, before suspending). On the proxy plane an unresolved handle
  /// is materialized first (lazy resolution, deduplicated per key).
  exec::Co<const Data*> local_ref(const Key& key);

private:
  /// One in-flight peer fetch, shared by every task waiting on the key.
  struct InflightFetch {
    explicit InflightFetch(exec::Executor& engine) : done(engine) {}
    exec::Event done;
    Data data;
  };

  exec::Co<void> handle_compute(TaskSpec spec, std::vector<DepLocation> deps,
                                std::uint64_t cause);
  exec::Co<Data> fetch(const DepLocation& dep);
  /// Materialize the proxy handle registered for `key` into the store:
  /// pull the deposit (a modeled cross-node transfer when the handle
  /// points off-node; zero-copy otherwise). Concurrent resolvers of the
  /// same key join one resolution.
  exec::Co<void> resolve_proxy(const Key& key);
  /// Register a pushed proxy handle (proxy-plane kReceiveData*).
  void store_put_proxy(Key key, const ProxyHandle& handle);
  /// Fetch one dependency into slot `i` of the shared input vector
  /// (spawned per dep by handle_compute; joined with when_all).
  exec::Co<void> fetch_one(std::shared_ptr<std::vector<Data>> inputs,
                          std::size_t i, DepLocation dep);
  exec::Co<void> handle_get_data(WorkerMsg msg);
  void store_put(Key key, Data data);
  /// Like store_put, but accounts the bytes as a cached peer copy
  /// (memory_bytes_ and peer_fetch_cached_bytes_, not bytes_stored_).
  void store_put_cached(Key key, Data data);
  exec::Co<void> notify_scheduler(
      SchedMsg msg, exec::Delivery delivery = exec::Delivery::kReliable);

  /// Update the memory gauge + counter track after a store change.
  void record_memory();

  exec::Executor* engine_;
  exec::Transport* cluster_;
  int id_;
  int node_;
  std::string actor_;  // trace actor name, "worker-<id>"
  WorkerParams params_;
  exec::Channel<WorkerMsg> inbox_;
  exec::FifoServer cpu_;

  int scheduler_node_ = -1;
  exec::Channel<SchedMsg>* scheduler_inbox_ = nullptr;
  /// Empty at shards == 1 (every branch testing it is dead then).
  std::vector<exec::Channel<SchedMsg>*> shard_inboxes_;
  std::vector<WorkerRef> peers_;

  std::unordered_map<Key, Data> store_;
  /// Unresolved proxy handles: pushed tokens whose payload still lives
  /// in the depot. Moved into store_ (and erased here) on first use.
  std::unordered_map<Key, ProxyHandle> proxy_;
  ProxyDepot* depot_ = nullptr;
  std::unordered_map<Key, std::unique_ptr<exec::Event>> arrivals_;
  /// Peer fetches currently on the wire, keyed by the requested key.
  /// Tasks needing a key already in flight join the existing fetch
  /// instead of issuing a duplicate request.
  std::unordered_map<Key, std::shared_ptr<InflightFetch>> inflight_;
  /// Proxy resolutions currently materializing, keyed by the key; later
  /// dereferences of the same handle join instead of double-pulling.
  std::unordered_map<Key, std::shared_ptr<InflightFetch>> resolving_;
  /// Bounds the number of concurrent outbound peer fetches (NIC model).
  exec::Semaphore fetch_slots_;
  std::uint64_t tasks_executed_ = 0;
  std::uint64_t bytes_stored_ = 0;
  std::uint64_t peer_fetch_cached_bytes_ = 0;
  std::uint64_t peer_fetches_ = 0;
  std::uint64_t peer_fetches_shared_ = 0;
  std::uint64_t peer_fetch_cache_hits_ = 0;
  std::uint64_t memory_bytes_ = 0;
  std::uint64_t peak_memory_bytes_ = 0;
  std::uint64_t keys_released_ = 0;
  bool stopping_ = false;
  bool alive_ = true;
};

}  // namespace deisa::dts
