// Worker actor: executes tasks, stores results, serves peer fetches, and
// accepts direct data pushes (the scatter path DEISA bridges use to move
// simulation blocks into the cluster without staging through the
// scheduler).
#pragma once

#include <unordered_map>

#include "deisa/dts/messages.hpp"
#include "deisa/dts/task.hpp"
#include "deisa/net/cluster.hpp"
#include "deisa/sim/primitives.hpp"

namespace deisa::dts {

struct WorkerParams {
  int nthreads = 1;
  /// Seconds between heartbeats to the scheduler; <= 0 disables.
  double heartbeat_interval = 1.0;
};

class Worker {
public:
  Worker(sim::Engine& engine, net::Cluster& cluster, int id, int node,
         WorkerParams params);

  int id() const { return id_; }
  int node() const { return node_; }
  sim::Channel<WorkerMsg>& inbox() { return inbox_; }

  /// Wire up peers and the scheduler (done once by the Runtime).
  void attach(int scheduler_node, sim::Channel<SchedMsg>* scheduler_inbox,
              std::vector<WorkerRef> peers);

  /// Main actor loop; exits on kShutdown.
  sim::Co<void> run();
  /// Heartbeat loop (spawned alongside run()); exits once shutdown.
  sim::Co<void> run_heartbeats();

  /// Fail-stop crash (fault injection): the worker stops heartbeating,
  /// drops every queued and future message, abandons in-flight computes,
  /// and loses its store. The actor stays allocated — a crashed worker is
  /// a black hole, not a dangling pointer.
  void crash();
  bool alive() const { return alive_; }

  // ---- observability ----
  std::uint64_t tasks_executed() const { return tasks_executed_; }
  /// Cumulative bytes ever stored (throughput measure).
  std::uint64_t bytes_stored() const { return bytes_stored_; }
  /// Bytes currently resident in the worker's store.
  std::uint64_t memory_bytes() const { return memory_bytes_; }
  std::size_t keys_in_memory() const { return store_.size(); }
  /// Drop a key from local memory (scheduler-directed release).
  bool release_key(const Key& key);
  bool has_local(const Key& key) const { return store_.count(key) != 0; }
  double busy_time() const { return cpu_.total_busy_time(); }

  /// Local blocking lookup: waits until `key` lands in the local store.
  sim::Co<Data> local_get(const Key& key);

private:
  sim::Co<void> handle_compute(TaskSpec spec, std::vector<DepLocation> deps);
  sim::Co<Data> fetch(const DepLocation& dep);
  sim::Co<void> handle_get_data(WorkerMsg msg);
  void store_put(Key key, Data data);
  sim::Co<void> notify_scheduler(
      SchedMsg msg, net::Delivery delivery = net::Delivery::kReliable);

  /// Update the memory gauge + counter track after a store change.
  void record_memory() const;

  sim::Engine* engine_;
  net::Cluster* cluster_;
  int id_;
  int node_;
  std::string actor_;  // trace actor name, "worker-<id>"
  WorkerParams params_;
  sim::Channel<WorkerMsg> inbox_;
  sim::FifoServer cpu_;

  int scheduler_node_ = -1;
  sim::Channel<SchedMsg>* scheduler_inbox_ = nullptr;
  std::vector<WorkerRef> peers_;

  std::unordered_map<Key, Data> store_;
  std::unordered_map<Key, std::unique_ptr<sim::Event>> arrivals_;
  std::uint64_t tasks_executed_ = 0;
  std::uint64_t bytes_stored_ = 0;
  std::uint64_t memory_bytes_ = 0;
  bool stopping_ = false;
  bool alive_ = true;
};

}  // namespace deisa::dts
