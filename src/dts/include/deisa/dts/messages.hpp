// Wire messages between dts actors. Every struct has a user-declared
// constructor (never an aggregate) — see the GCC 12 coroutine note on
// deisa::mpix::Message.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "deisa/dts/task.hpp"
#include "deisa/sim/primitives.hpp"

namespace deisa::dts {

/// Reference to a worker actor as seen by the scheduler/clients.
struct WorkerRef {
  WorkerRef() = default;
  WorkerRef(int id_, int node_, sim::Channel<struct WorkerMsg>* inbox_)
      : id(id_), node(node_), inbox(inbox_) {}
  int id = -1;
  int node = -1;
  sim::Channel<struct WorkerMsg>* inbox = nullptr;
};

/// Dependency location handed to a worker with a compute request.
struct DepLocation {
  DepLocation() = default;
  DepLocation(Key key_, int owner_, std::uint64_t bytes_)
      : key(std::move(key_)), owner(owner_), bytes(bytes_) {}
  Key key;
  int owner = -1;  // worker id
  std::uint64_t bytes = 0;
};

/// Message kinds accepted by the scheduler inbox. The scheduler counts
/// arrivals per kind — those counters are the measured quantity of the
/// paper's §2.1 metadata-message formula.
enum class SchedMsgKind {
  kUpdateGraph,
  kTaskFinished,
  kUpdateData,       // scatter registration; may carry external=true
  kCreateExternal,   // the paper's external-future RPC
  kWaitKey,          // client gather support
  kHeartbeatWorker,
  kHeartbeatBridge,
  kCancelKey,
  kVariableSet,
  kVariableGet,
  kQueuePut,
  kQueueGet,
  kShutdown,
};

const char* to_string(SchedMsgKind k);

struct SchedMsg {
  explicit SchedMsg(SchedMsgKind kind_) : kind(kind_) {}

  SchedMsgKind kind;
  int sender_node = -1;

  // kUpdateGraph
  std::vector<TaskSpec> tasks;
  std::vector<Key> wants;

  // kTaskFinished / kUpdateData / kWaitKey
  Key key;
  int worker = -1;
  std::uint64_t bytes = 0;
  bool external = false;
  bool erred = false;
  std::string error;

  // kCreateExternal
  std::vector<Key> keys;
  std::vector<int> preferred_workers;

  // kVariable* / kQueue*
  std::string name;
  Data payload;

  // Replies (WaitKey -> worker id or -2 on error; VariableGet/QueueGet ->
  // payload). Channels are engine-bound and shared with the requester.
  std::shared_ptr<sim::Channel<int>> reply_worker;
  std::shared_ptr<sim::Channel<Data>> reply_data;
};

/// Messages accepted by a worker inbox.
enum class WorkerMsgKind {
  kCompute,
  kReceiveData,  // direct push (scatter / bridge send)
  kGetData,      // peer or client fetch
  kShutdown,
};

struct WorkerMsg {
  explicit WorkerMsg(WorkerMsgKind kind_) : kind(kind_) {}

  WorkerMsgKind kind;

  // kCompute
  TaskSpec spec;
  std::vector<DepLocation> deps;

  // kReceiveData / kGetData
  Key key;
  Data payload;
  int requester_node = -1;
  std::shared_ptr<sim::Channel<Data>> reply_data;
};

/// Estimated wire size of a scheduler message (metadata serialization).
std::uint64_t wire_bytes(const SchedMsg& msg);

}  // namespace deisa::dts
