// Wire messages between dts actors. Every struct has a user-declared
// constructor (never an aggregate) — see the GCC 12 coroutine note on
// deisa::mpix::Message.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "deisa/dts/task.hpp"
#include "deisa/exec/primitives.hpp"

namespace deisa::dts {

// ---- wire-cost model constants ----
// Shared by the workers, clients, the scheduler's metadata serialization
// model and the bridge push path, so every actor prices the same thing
// the same way.
/// Floor on any bulk payload transfer (serialization framing: even an
/// empty block occupies one frame on the wire).
inline constexpr std::uint64_t kMinTransferBytes = 64;
/// Base size of a small control message (request/ack envelope).
inline constexpr std::uint64_t kControlMsgBase = 128;
/// Scheduler-message envelope (header + routing metadata).
inline constexpr std::uint64_t kWireEnvelopeBytes = 512;
/// Serialized size of one TaskSpec in an update_graph batch.
inline constexpr std::uint64_t kWirePerTaskBytes = 256;
/// Serialized size of one dependency edge.
inline constexpr std::uint64_t kWirePerDepBytes = 48;
/// Serialized size of one key reference (keys/wants lists).
inline constexpr std::uint64_t kWirePerKeyBytes = 64;

/// Pass-by-reference ownership token (proxy data plane). Instead of
/// pushing payload bytes, a producer deposits the payload in the shared
/// ProxyDepot and circulates this handle; the first consumer to
/// dereference it pulls the bytes (or aliases them on the same node).
/// The refcount lives scheduler-side (TaskRecord::pending_consumers) —
/// the handle itself only names the deposit.
struct ProxyHandle {
  ProxyHandle() = default;
  ProxyHandle(int location_, std::uint64_t bytes_, std::uint64_t cause_)
      : location(location_), bytes(bytes_), cause(cause_) {}
  int location = -1;          // node holding the deposited payload
  std::uint64_t bytes = 0;    // payload size (the handle itself is tiny)
  std::uint64_t cause = 0;    // provenance of the deposited payload
};

/// Wraps a proxy handle as a Data payload so it can ride the existing
/// kReceiveData/kGetData envelopes. `bytes` still advertises the real
/// payload size (scheduler registration and dep sizing are unchanged);
/// only the wire transfer shrinks to a token.
inline Data make_proxy_data(const ProxyHandle& h) {
  Data d(std::make_shared<const std::any>(h), h.bytes);
  d.cause = h.cause;
  return d;
}

/// Returns the handle if `d` is a proxy marker, nullptr for real
/// payloads (including synthetic size-only Data).
inline const ProxyHandle* as_proxy(const Data& d) {
  if (!d.value || !d.value->has_value()) return nullptr;
  return std::any_cast<ProxyHandle>(d.value.get());
}

/// Reference to a worker actor as seen by the scheduler/clients.
struct WorkerRef {
  WorkerRef() = default;
  WorkerRef(int id_, int node_, exec::Channel<struct WorkerMsg>* inbox_)
      : id(id_), node(node_), inbox(inbox_) {}
  int id = -1;
  int node = -1;
  exec::Channel<struct WorkerMsg>* inbox = nullptr;
};

/// Scheduler acknowledgement: an int code (worker id, ack code, or a
/// kAck* sentinel) plus the causality id of the scheduler handling span
/// that produced it. wait_key replies carry the completion's handling
/// span so a client that throttles on a key — wait, then submit the next
/// batch — chains its follow-up graph onto the completion it waited for
/// instead of opening a fresh causal root.
struct Ack {
  Ack() = default;
  Ack(int code_, std::uint64_t cause_) : code(code_), cause(cause_) {}
  int code = 0;
  std::uint64_t cause = 0;
};

/// Dependency location handed to a worker with a compute request.
struct DepLocation {
  DepLocation() = default;
  DepLocation(Key key_, int owner_, std::uint64_t bytes_,
              std::uint64_t cause_ = 0)
      : key(std::move(key_)), owner(owner_), bytes(bytes_), cause(cause_) {}
  Key key;
  int owner = -1;  // worker id
  std::uint64_t bytes = 0;
  /// Causality id of the event that completed this dependency (the
  /// scheduler handling span that transitioned it to memory); lets the
  /// worker record dep-ready -> execute edges without knowing how the
  /// data physically arrived.
  std::uint64_t cause = 0;
};

/// Message kinds accepted by the scheduler inbox. The scheduler counts
/// arrivals per kind — those counters are the measured quantity of the
/// paper's §2.1 metadata-message formula.
enum class SchedMsgKind {
  kUpdateGraph,
  kTaskFinished,
  kUpdateData,       // scatter registration; may carry external=true
  kCreateExternal,   // the paper's external-future RPC
  kWaitKey,          // client gather support
  kHeartbeatWorker,
  kHeartbeatBridge,
  kCancelKey,
  kVariableSet,
  kVariableGet,
  kQueuePut,
  kQueueGet,
  kWorkerLost,       // failure detector -> scheduler (serialized recovery)
  kRepushKeys,       // producer asks for its pending re-push assignments
  kRepushExpired,    // internal deadline: re-armed key never replayed
                     // (carries the re-arm epoch in `bytes`)
  kShardKeyDone,     // cross-shard completion notification {key, worker,
                     // bytes} from the owning shard to a subscriber shard
  kShardWorkerDead,  // liveness broadcast from shard 0 {worker, epoch in
                     // `bytes`}: every peer shard runs recovery over its
                     // own records
  kShardKeyReleased, // consumer-drain ack from a subscriber shard to the
                     // owner {key, drained count in `bytes`}: the remote
                     // consumers charged at ingest have all finished
  kShutdown,
};

const char* to_string(SchedMsgKind k);

/// Number of SchedMsgKind values (flat per-kind arrival counters).
inline constexpr std::size_t kSchedMsgKindCount =
    static_cast<std::size_t>(SchedMsgKind::kShutdown) + 1;

// Acknowledgement codes carried on int reply channels. Non-negative
// values are worker ids (wait_key, scatter registration).
inline constexpr int kAckErred = -2;      // task erred / cancelled
inline constexpr int kAckDiscarded = -3;  // stale push dropped (terminal key)
/// The push was handled, but the scheduler holds pending re-push
/// assignments for this producer: it must issue kRepushKeys and replay
/// the listed blocks (possibly including the one just pushed, if its
/// target worker is being replaced).
inline constexpr int kAckRepushPending = -4;

/// Payload of a kRepushKeys reply: lost external keys this producer must
/// push again, each with its re-routed target worker.
using RepushList = std::vector<std::pair<Key, int>>;

struct SchedMsg {
  explicit SchedMsg(SchedMsgKind kind_) : kind(kind_) {}

  SchedMsgKind kind;
  /// Causality id of the span that sent this message (0: untraced). The
  /// scheduler links its handling span to it, giving the trace analyzer
  /// typed send->recv / push->update_data edges.
  std::uint64_t cause = 0;
  int sender_node = -1;
  /// Client id of the sender (-1 for workers/internal messages). Re-push
  /// bookkeeping is per client, not per node: two ranks can share a node
  /// but each holds its own replay buffer.
  int sender_client = -1;

  // kUpdateGraph
  std::vector<TaskSpec> tasks;
  std::vector<Key> wants;
  /// Cross-shard completion subscriptions piggybacked on the slice sent
  /// to the shard that OWNS sub_keys[i]: "when sub_keys[i] completes,
  /// send kShardKeyDone to shard sub_shards[i]". sub_counts[i] is the
  /// number of consumer edges this batch charges against sub_keys[i]
  /// from shard sub_shards[i] (refcount GC: the owner adds them to
  /// pending_consumers/ever_consumers; the subscriber drains them back
  /// with kShardKeyReleased). Always empty at shards == 1 (the
  /// single-shard wire format is unchanged).
  std::vector<Key> sub_keys;
  std::vector<int> sub_shards;
  std::vector<int> sub_counts;

  // kTaskFinished / kUpdateData / kWaitKey
  Key key;
  int worker = -1;
  std::uint64_t bytes = 0;
  bool external = false;
  bool erred = false;
  std::string error;

  // kCreateExternal; also batched kUpdateData (coalesced bridge pushes):
  // a kUpdateData with non-empty `keys` registers every (keys[i],
  // sizes[i]) pair on `worker` in one message, and replies per-key acks
  // on `reply_acks` instead of a single code on `reply_worker`.
  std::vector<Key> keys;
  std::vector<int> preferred_workers;
  std::vector<std::uint64_t> sizes;
  std::shared_ptr<exec::Channel<std::vector<int>>> reply_acks;

  // kVariable* / kQueue*
  std::string name;
  Data payload;

  // Replies (WaitKey -> worker id or -2 on error; VariableGet/QueueGet ->
  // payload). Channels are engine-bound and shared with the requester.
  std::shared_ptr<exec::Channel<Ack>> reply_worker;
  std::shared_ptr<exec::Channel<Data>> reply_data;
  std::shared_ptr<exec::Channel<RepushList>> reply_repush;  // kRepushKeys

  /// Producer wake-up channel, carried on kUpdateData. The scheduler
  /// remembers the latest channel per producing client and pokes it with
  /// kAckRepushPending when re-push work appears for that producer later
  /// — e.g. a crash detected after the producer's final push, when no
  /// further ack could carry the request.
  std::shared_ptr<exec::Channel<int>> notify;

  /// Memoized sum of tasks[i].deps.size(), shared by wire_bytes() and
  /// the scheduler's service-time model so a large update_graph batch is
  /// scanned once, not once per consumer. ~0 means "not computed yet";
  /// mutating `tasks` after either consumer ran would stale it, which no
  /// sender does (messages are built, sent, and moved).
  mutable std::uint64_t dep_total_cache = ~std::uint64_t{0};
};

/// Sum of deps.size() over msg.tasks, memoized on the message.
std::uint64_t spec_dep_total(const SchedMsg& msg);

/// Messages accepted by a worker inbox.
enum class WorkerMsgKind {
  kCompute,
  kReceiveData,       // direct push (scatter / bridge send)
  kReceiveDataBatch,  // coalesced push: several blocks in one message
  kGetData,           // peer or client fetch
  kReleaseKey,        // refcount GC: drop the stored value for `key`
  kShutdown,
};

struct WorkerMsg {
  explicit WorkerMsg(WorkerMsgKind kind_) : kind(kind_) {}

  WorkerMsgKind kind;
  /// Causality id of the sending span (scheduler assign, bridge push).
  std::uint64_t cause = 0;

  // kCompute
  TaskSpec spec;
  std::vector<DepLocation> deps;

  // kReceiveData / kGetData
  Key key;
  Data payload;
  int requester_node = -1;
  std::shared_ptr<exec::Channel<Data>> reply_data;

  // kReceiveDataBatch
  std::vector<std::pair<Key, Data>> batch;
};

/// Estimated wire size of a scheduler message (metadata serialization).
std::uint64_t wire_bytes(const SchedMsg& msg);

}  // namespace deisa::dts
