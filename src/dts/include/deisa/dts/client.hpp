// Client actor: the analytics-side handle on the distributed task system.
// Extends the dask.distributed Client surface with the paper's additions:
//   * scatter(..., keys=..., external=...)  (§2.2)
//   * external_futures(...) — create tasks in the external state ahead of
//     the data, so whole multi-timestep graphs can be submitted up front.
// DEISA bridges are built on this same class (the paper keeps the bridge
// "built in the Dask client class").
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "deisa/dts/scheduler.hpp"
#include "deisa/dts/worker.hpp"

namespace deisa::dts {

/// Client-side mirror of a scheduler task (a lightweight future).
class Future {
public:
  Future() = default;
  Future(Key key, class Client* client) : key_(std::move(key)), client_(client) {}
  const Key& key() const { return key_; }
  bool valid() const { return client_ != nullptr; }

private:
  Key key_;
  Client* client_ = nullptr;
};

class Client {
public:
  Client(exec::Executor& engine, exec::Transport& cluster, int id, int node,
         int scheduler_node, exec::Channel<SchedMsg>* scheduler_inbox,
         std::vector<WorkerRef> workers);

  int id() const { return id_; }
  int node() const { return node_; }
  int num_workers() const { return static_cast<int>(workers_.size()); }
  exec::Executor& engine() { return *engine_; }

  /// Switch this client onto the proxy data plane (set by the Runtime;
  /// `depot` is the runtime-wide payload depot). Scatters then deposit
  /// payloads and push ownership tokens, and gathers dereference
  /// forwarded handles themselves.
  void set_data_plane(DataPlane plane, ProxyDepot* depot) {
    plane_ = plane;
    depot_ = depot;
  }
  DataPlane data_plane() const { return plane_; }

  /// Scheduler-shard routing table (set by the Runtime, only at
  /// shards > 1). Submissions are then split per-shard in one pass with
  /// cross-shard dependency subscriptions piggybacked on the owner's
  /// slice; keyed RPCs route to the shard owning the key, name-keyed
  /// ops (variables/queues) to the shard owning the name. At shards == 1
  /// the table stays empty and every code path is exactly the pre-shard
  /// single-scheduler one.
  void set_shards(std::vector<exec::Channel<SchedMsg>*> inboxes) {
    shard_inboxes_ = std::move(inboxes);
  }

  /// Submit a task graph; `wants` marks the keys this client will gather.
  exec::Co<void> submit(std::vector<TaskSpec> tasks,
                       std::vector<Key> wants = {});

  /// Create external tasks (paper §2.2): keyed, unschedulable, completed
  /// later by an external environment. One batched RPC.
  exec::Co<std::vector<Future>> external_futures(
      std::vector<Key> keys, std::vector<int> preferred_workers = {});

  /// Scatter one payload to a worker. With `external=true` this completes
  /// a task previously created by external_futures (scheduler transitions
  /// it external→memory and unblocks dependents). `inform_scheduler`
  /// mirrors the two messages of a dask scatter: bulk data to the worker
  /// plus metadata to the scheduler. Returns the scheduler's registration
  /// acknowledgement: the worker id normally, or one of the negative ack
  /// codes (kAckErred / kAckDiscarded / kAckRepushPending) under faults —
  /// kAckRepushPending asks the caller to follow up with repush_keys().
  /// `cause` is the sender's causality id (a bridge push span); it rides
  /// on both the worker push and the scheduler registration so the trace
  /// links push -> update_data.
  exec::Co<int> scatter(Key key, Data data, int worker, bool external = false,
                       bool inform_scheduler = true, std::uint64_t cause = 0);

  /// Coalesced scatter: push several payloads to ONE worker as a single
  /// bulk transfer plus a single batched registration RPC, instead of a
  /// (transfer, kUpdateData, ack) round trip per block. Returns the
  /// per-key acks in item order, same codes as scatter().
  exec::Co<std::vector<int>> scatter_batch(
      std::vector<std::pair<Key, Data>> items, int worker,
      bool external = false, std::uint64_t cause = 0);

  /// Drain this producer's pending re-push assignments: lost external
  /// keys the scheduler wants pushed again, each with its re-routed
  /// target worker. Synchronous RPC (see kAckRepushPending).
  exec::Co<RepushList> repush_keys();

  /// Register a wake-up channel carried on every scatter registration.
  /// The scheduler pokes it with kAckRepushPending when re-push work
  /// appears for this producer after its last push — the only path by
  /// which a crash detected late (after the final block went out) still
  /// reaches the producer's replay buffer.
  void set_notify_channel(std::shared_ptr<exec::Channel<int>> ch) {
    notify_ = std::move(ch);
  }

  /// Block until `key` is finished; returns the worker holding it.
  /// Throws util::Error if the task erred.
  exec::Co<int> wait_key(const Key& key);

  /// wait_key + fetch the payload from the owning worker.
  exec::Co<Data> gather(const Key& key);

  // Dask Variables: named single-slot broadcast values (used for the
  // contract exchange in DEISA2/3 — two variables instead of the
  // nbr_ranks queues of DEISA1).
  exec::Co<void> variable_set(const std::string& name, Data value);
  exec::Co<Data> variable_get(const std::string& name);

  // Dask Queues (the DEISA1 mechanism).
  exec::Co<void> queue_put(const std::string& name, Data value);
  exec::Co<Data> queue_get(const std::string& name);

  /// Periodic client heartbeat to the scheduler. DEISA1 keeps the default
  /// interval, DEISA2 raises it to 60 s, DEISA3 sets it to infinity
  /// (interval <= 0 here). Runs until `stop` is set.
  exec::Co<void> run_heartbeats(double interval, exec::Event& stop);

  /// Cancel a not-yet-finished task: it (and its downstream cone) moves
  /// to the erred state with a "cancelled" message. Completed results
  /// are left untouched. Synchronous.
  exec::Co<void> cancel(const Key& key);

  /// Ask the scheduler to shut down (tests/teardown).
  exec::Co<void> send_shutdown();

  std::uint64_t messages_sent() const { return messages_sent_; }

  /// Causal provenance of the last payload this client received (gather,
  /// queue_get, variable_get). Graph submissions are stamped with it so
  /// data-driven control flow — "a result arrived, submit the next step"
  /// — shows up as an edge in the causal DAG instead of a fresh root.
  std::uint64_t last_cause() const { return last_cause_; }

private:
  exec::Co<void> send_to_scheduler(
      SchedMsg msg, exec::Delivery delivery = exec::Delivery::kReliable,
      int shard = 0);
  /// Shard owning `key` (0 when unsharded).
  int shard_of(std::string_view key) const;
  /// N > 1 half of submit(): split the batch per-shard, wiring
  /// cross-shard dependency subscriptions onto the owners' slices.
  exec::Co<void> submit_sharded(std::vector<TaskSpec> tasks,
                               std::vector<Key> wants);
  /// N > 1 half of scatter_batch(): split the batched registration
  /// per-shard and reassemble the acks in item order.
  exec::Co<std::vector<int>> register_batch_sharded(SchedMsg reg);

  exec::Executor* engine_;
  exec::Transport* cluster_;
  int id_;
  int node_;
  int scheduler_node_;
  exec::Channel<SchedMsg>* scheduler_inbox_;
  /// Empty at shards == 1 (every branch testing it is dead then).
  std::vector<exec::Channel<SchedMsg>*> shard_inboxes_;
  std::vector<WorkerRef> workers_;
  std::shared_ptr<exec::Channel<int>> notify_;
  DataPlane plane_ = DataPlane::kCopy;
  ProxyDepot* depot_ = nullptr;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t last_cause_ = 0;
};

}  // namespace deisa::dts
