#include "deisa/dts/policy.hpp"

#include <limits>
#include <vector>

#include "deisa/util/error.hpp"

namespace deisa::dts {

const char* to_string(SchedulingPolicy p) {
  switch (p) {
    case SchedulingPolicy::kLocality: return "locality";
    case SchedulingPolicy::kRoundRobin: return "round-robin";
    case SchedulingPolicy::kLeastLoaded: return "least-loaded";
    case SchedulingPolicy::kHeft: return "heft";
  }
  return "?";
}

SchedulingPolicy policy_of(const std::string& name) {
  if (name == "locality") return SchedulingPolicy::kLocality;
  if (name == "round-robin") return SchedulingPolicy::kRoundRobin;
  if (name == "least-loaded") return SchedulingPolicy::kLeastLoaded;
  if (name == "heft") return SchedulingPolicy::kHeft;
  DEISA_CHECK(false, "unknown scheduling policy '"
                         << name
                         << "' (locality|round-robin|least-loaded|heft)");
  return SchedulingPolicy::kLocality;
}

namespace {

// The pre-seam decide_worker tail, verbatim: max-byte owner wins; ties
// break to the lowest worker id; a zero-byte owner never wins (best
// starts at -1 with best_bytes 0, and the tie clause requires best >= 0,
// so only a strictly positive byte count can seat a first candidate) —
// all-empty inputs fall through to the shared round-robin. That quirk is
// pinned by tests/test_policy.cpp; change it there first.
class LocalityFirstPolicy final : public ISchedulingPolicy {
public:
  SchedulingPolicy kind() const override {
    return SchedulingPolicy::kLocality;
  }
  int pick(const TaskView& task, PolicyContext& ctx) override {
    int best = -1;
    std::uint64_t best_bytes = 0;
    for (std::size_t j = 0; j < task.owner_count; ++j) {
      const std::uint64_t b = task.owner_bytes[j];
      if (b > best_bytes ||
          (b == best_bytes && best >= 0 && task.owners[j] < best)) {
        best = task.owners[j];
        best_bytes = b;
      }
    }
    if (best >= 0) return best;
    return ctx.round_robin();
  }
};

class RoundRobinPolicy final : public ISchedulingPolicy {
public:
  SchedulingPolicy kind() const override {
    return SchedulingPolicy::kRoundRobin;
  }
  int pick(const TaskView&, PolicyContext& ctx) override {
    return ctx.round_robin();
  }
};

class LeastLoadedPolicy final : public ISchedulingPolicy {
public:
  SchedulingPolicy kind() const override {
    return SchedulingPolicy::kLeastLoaded;
  }
  int pick(const TaskView&, PolicyContext& ctx) override {
    // Ascending scan, strict <: ties stay with the lowest live id.
    // Depths move as each pick in a drain batch lands (assign bumps the
    // inflight counter before the next ready task is decided), so a
    // burst of equal tasks spreads instead of piling on worker 0.
    int best = -1;
    int best_load = std::numeric_limits<int>::max();
    const std::size_t n = ctx.worker_count();
    for (std::size_t w = 0; w < n; ++w) {
      if (ctx.is_dead(static_cast<int>(w))) continue;
      const int load = ctx.inflight(static_cast<int>(w));
      if (load < best_load) {
        best = static_cast<int>(w);
        best_load = load;
      }
    }
    if (best >= 0) return best;
    return ctx.round_robin();  // unreachable; keeps the no-live CHECK loud
  }
};

class HeftPolicy final : public ISchedulingPolicy {
public:
  SchedulingPolicy kind() const override { return SchedulingPolicy::kHeft; }
  int pick(const TaskView& task, PolicyContext& ctx) override {
    // Virtual per-worker ready-times, advanced by each pick — no wall
    // clock, so the rank (and therefore placement) is identical on sim
    // and threads. EFT(w) = ready[w] + remote_bytes(w)/bw + cost.
    const std::size_t n = ctx.worker_count();
    if (ready_.size() < n) ready_.resize(n, 0.0);
    int best = -1;
    double best_eft = std::numeric_limits<double>::infinity();
    for (std::size_t w = 0; w < n; ++w) {
      if (ctx.is_dead(static_cast<int>(w))) continue;
      std::uint64_t local = 0;
      for (std::size_t j = 0; j < task.owner_count; ++j)
        if (task.owners[j] == static_cast<int>(w)) local += task.owner_bytes[j];
      const double transfer =
          static_cast<double>(task.dep_bytes_total - local) /
          kPolicyModelBandwidth;
      const double eft = ready_[w] + transfer + task.cost;
      if (eft < best_eft) {  // strict <: ties stay with the lowest id
        best = static_cast<int>(w);
        best_eft = eft;
      }
    }
    if (best < 0) return ctx.round_robin();
    ready_[static_cast<std::size_t>(best)] = best_eft;
    return best;
  }

private:
  std::vector<double> ready_;
};

}  // namespace

std::unique_ptr<ISchedulingPolicy> make_policy(SchedulingPolicy p) {
  switch (p) {
    case SchedulingPolicy::kLocality:
      return std::make_unique<LocalityFirstPolicy>();
    case SchedulingPolicy::kRoundRobin:
      return std::make_unique<RoundRobinPolicy>();
    case SchedulingPolicy::kLeastLoaded:
      return std::make_unique<LeastLoadedPolicy>();
    case SchedulingPolicy::kHeft:
      return std::make_unique<HeftPolicy>();
  }
  DEISA_CHECK(false, "unknown scheduling policy enum "
                         << static_cast<int>(p));
  return nullptr;
}

}  // namespace deisa::dts
