#include "deisa/dts/runtime.hpp"

namespace deisa::dts {

Runtime::Runtime(exec::Executor& engine, exec::Transport& cluster,
                 int scheduler_node, std::vector<int> worker_nodes,
                 RuntimeParams params)
    : engine_(&engine), cluster_(&cluster), data_plane_(params.data_plane) {
  if (data_plane_ == DataPlane::kProxy) depot_ = std::make_unique<ProxyDepot>();
  params.worker.data_plane = data_plane_;
  sched_ = std::make_unique<ShardedScheduler>(
      engine, cluster, scheduler_node, params.shards, params.scheduler);
  for (std::size_t i = 0; i < worker_nodes.size(); ++i)
    workers_.push_back(std::make_unique<Worker>(
        engine, cluster, static_cast<int>(i), worker_nodes[i], params.worker));

  std::vector<WorkerRef> refs = worker_refs();
  sched_->attach_workers(refs);
  for (auto& w : workers_) {
    w->attach(scheduler_node, &sched_->shard(0).inbox(), refs);
    w->set_depot(depot_.get());
    if (params.shards > 1) w->set_shards(sched_->inboxes());
  }
}

std::vector<WorkerRef> Runtime::worker_refs() const {
  std::vector<WorkerRef> refs;
  refs.reserve(workers_.size());
  for (const auto& w : workers_)
    refs.emplace_back(w->id(), w->node(), &w->inbox());
  return refs;
}

void Runtime::start() {
  DEISA_CHECK(!started_, "runtime already started");
  started_ = true;
  // Strand grouping (no-op under the simulator): each shard's message
  // loop and failure detector share one strand, and each worker's task
  // loop shares a strand with its heartbeat emitter, because each pair
  // mutates the same unlocked actor state. Cross-actor traffic goes
  // through thread-safe channels.
  sched_->start(*engine_);
  for (auto& w : workers_) {
    void* worker_strand = engine_->new_strand();
    engine_->spawn_on(worker_strand, w->run());
    engine_->spawn_on(worker_strand, w->run_heartbeats());
  }
}

Client& Runtime::make_client(int node) {
  clients_.push_back(std::make_unique<Client>(
      *engine_, *cluster_, static_cast<int>(clients_.size()), node,
      sched_->shard(0).node(), &sched_->shard(0).inbox(), worker_refs()));
  clients_.back()->set_data_plane(data_plane_, depot_.get());
  if (sched_->num_shards() > 1) clients_.back()->set_shards(sched_->inboxes());
  return *clients_.back();
}

exec::Co<void> Runtime::shutdown() {
  sched_->send_shutdown();
  for (auto& w : workers_) {
    WorkerMsg wstop(WorkerMsgKind::kShutdown);
    w->inbox().send(std::move(wstop));
  }
  co_return;
}

}  // namespace deisa::dts
