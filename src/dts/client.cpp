#include "deisa/dts/client.hpp"

#include <algorithm>
#include <unordered_map>

#include "deisa/dts/shard.hpp"
#include "deisa/obs/dataplane.hpp"

namespace deisa::dts {

Client::Client(exec::Executor& engine, exec::Transport& cluster, int id, int node,
               int scheduler_node, exec::Channel<SchedMsg>* scheduler_inbox,
               std::vector<WorkerRef> workers)
    : engine_(&engine),
      cluster_(&cluster),
      id_(id),
      node_(node),
      scheduler_node_(scheduler_node),
      scheduler_inbox_(scheduler_inbox),
      workers_(std::move(workers)) {}

exec::Co<void> Client::send_to_scheduler(SchedMsg msg, exec::Delivery delivery,
                                        int shard) {
  ++messages_sent_;
  msg.sender_node = node_;
  msg.sender_client = id_;
  // All shards are co-located on scheduler_node_; routing only picks the
  // inbox. Dead branch at shards == 1 (the table is empty).
  exec::Channel<SchedMsg>* target =
      shard_inboxes_.empty() ? scheduler_inbox_
                             : shard_inboxes_.at(static_cast<std::size_t>(shard));
  const exec::SendResult res = co_await cluster_->send_control(
      node_, scheduler_node_, wire_bytes(msg), delivery);
  // Fault injection decides delivery; the caller enqueues the copies
  // (0 = dropped, 2 = duplicated — only for non-reliable traffic).
  for (int i = 1; i < res.copies; ++i) target->send(msg);
  if (res.copies > 0) target->send(std::move(msg));
}

int Client::shard_of(std::string_view key) const {
  if (shard_inboxes_.size() <= 1) return 0;
  const ShardMapper mapper{static_cast<int>(shard_inboxes_.size())};
  return mapper.shard_of(key);
}

exec::Co<void> Client::submit(std::vector<TaskSpec> tasks,
                             std::vector<Key> wants) {
  if (shard_inboxes_.size() > 1) {
    co_await submit_sharded(std::move(tasks), std::move(wants));
    co_return;
  }
  SchedMsg msg(SchedMsgKind::kUpdateGraph);
  // Stamp the submission with the provenance of the last payload we saw:
  // per-step graphs triggered by queue tokens or gathered results chain
  // onto their trigger instead of starting a disconnected causal root.
  msg.cause = last_cause_;
  msg.tasks = std::move(tasks);
  msg.wants = std::move(wants);
  co_await send_to_scheduler(std::move(msg));
}

exec::Co<void> Client::submit_sharded(std::vector<TaskSpec> tasks,
                                     std::vector<Key> wants) {
  const int n = static_cast<int>(shard_inboxes_.size());
  std::vector<SchedMsg> slices;
  slices.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    slices.emplace_back(SchedMsgKind::kUpdateGraph);
    slices.back().cause = last_cause_;
  }
  // One pass: place each task on the shard owning its key; every
  // dependency owned by a DIFFERENT shard needs the owner to forward its
  // completion, so a {dep, consumer shard, consumer-edge count}
  // subscription is piggybacked on the owner's slice. Deduped with a
  // per-dep consumer bitmask — layer-structured graphs make many
  // same-shard tasks share one remote dependency (the 64-shard cap is
  // enforced at ShardedScheduler construction). Repeat edges from the
  // same consumer shard bump the already-emitted count in place, so the
  // owner's refcount GC charges exactly one consumer per dependent edge
  // — the same rule the single scheduler applies at ingestion.
  struct SubEntry {
    std::uint64_t bits = 0;
    // (consumer shard, index into the owner slice's sub_counts) pairs
    // already emitted for this dep; a dep rarely spans many shards.
    std::vector<std::pair<int, std::size_t>> at;
  };
  std::unordered_map<Key, SubEntry> submask;
  submask.reserve(tasks.size());
  for (auto& slice : slices)
    slice.tasks.reserve(tasks.size() / static_cast<std::size_t>(n) + 1);
  for (TaskSpec& t : tasks) {
    const int s = shard_of(t.key);
    for (const Key& dep : t.deps) {
      const int ds = shard_of(dep);
      if (ds == s) continue;
      SubEntry& entry = submask[dep];
      auto& owner = slices[static_cast<std::size_t>(ds)];
      const std::uint64_t bit = std::uint64_t{1} << s;
      if ((entry.bits & bit) != 0) {
        for (auto& [shard, idx] : entry.at)
          if (shard == s) {
            ++owner.sub_counts[idx];
            break;
          }
        continue;
      }
      entry.bits |= bit;
      entry.at.emplace_back(s, owner.sub_counts.size());
      owner.sub_keys.push_back(dep);
      owner.sub_shards.push_back(s);
      owner.sub_counts.push_back(1);
    }
    slices[static_cast<std::size_t>(s)].tasks.push_back(std::move(t));
  }
  for (Key& w : wants) {
    const int s = shard_of(w);
    slices[static_cast<std::size_t>(s)].wants.push_back(std::move(w));
  }
  for (int s = 0; s < n; ++s) {
    SchedMsg& m = slices[static_cast<std::size_t>(s)];
    if (m.tasks.empty() && m.wants.empty() && m.sub_keys.empty()) continue;
    co_await send_to_scheduler(std::move(m), exec::Delivery::kReliable, s);
  }
}

exec::Co<std::vector<Future>> Client::external_futures(
    std::vector<Key> keys, std::vector<int> preferred_workers) {
  std::vector<Future> futures;
  futures.reserve(keys.size());
  for (const Key& k : keys) futures.emplace_back(k, this);
  if (shard_inboxes_.size() > 1) {
    DEISA_CHECK(preferred_workers.empty() ||
                    preferred_workers.size() == keys.size(),
                "preferred_workers must be empty or parallel to keys");
    const int n = static_cast<int>(shard_inboxes_.size());
    std::vector<SchedMsg> slices;
    slices.reserve(static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s)
      slices.emplace_back(SchedMsgKind::kCreateExternal);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      auto& slice = slices[static_cast<std::size_t>(shard_of(keys[i]))];
      if (!preferred_workers.empty())
        slice.preferred_workers.push_back(preferred_workers[i]);
      slice.keys.push_back(std::move(keys[i]));
    }
    for (int s = 0; s < n; ++s) {
      if (slices[static_cast<std::size_t>(s)].keys.empty()) continue;
      co_await send_to_scheduler(
          std::move(slices[static_cast<std::size_t>(s)]),
          exec::Delivery::kReliable, s);
    }
    co_return futures;
  }
  SchedMsg msg(SchedMsgKind::kCreateExternal);
  msg.keys = std::move(keys);
  msg.preferred_workers = std::move(preferred_workers);
  co_await send_to_scheduler(std::move(msg));
  co_return futures;
}

exec::Co<int> Client::scatter(Key key, Data data, int worker, bool external,
                             bool inform_scheduler, std::uint64_t cause) {
  DEISA_CHECK(worker >= 0 && static_cast<std::size_t>(worker) < workers_.size(),
              "scatter to unknown worker " << worker);
  const WorkerRef& ref = workers_[static_cast<std::size_t>(worker)];
  const std::uint64_t payload_bytes = data.bytes;
  if (plane_ == DataPlane::kProxy && depot_ != nullptr) {
    // 1) Proxy plane: the payload stays in the sender's depot; only a
    // token-sized ownership handle crosses the wire. Bytes move lazily,
    // on the worker's first dereference.
    ProxyHandle handle(node_, payload_bytes,
                       cause != 0 ? cause : data.cause);
    depot_->deposit(key, std::move(data), node_);
    obs::count_referenced(payload_bytes);
    co_await cluster_->transfer_token(node_, ref.node, key.size());
    WorkerMsg push(WorkerMsgKind::kReceiveData);
    push.cause = cause;
    push.key = key;
    push.payload = make_proxy_data(handle);
    ref.inbox->send(std::move(push));
  } else {
    // 1) Copy plane: bulk payload straight to the worker ...
    const std::uint64_t bytes = std::max(payload_bytes, kMinTransferBytes);
    co_await cluster_->transfer(node_, ref.node, bytes);
    obs::count_moved(payload_bytes);
    WorkerMsg push(WorkerMsgKind::kReceiveData);
    push.cause = cause;
    push.key = key;
    push.payload = std::move(data);
    ref.inbox->send(std::move(push));
  }
  // 2) ... and the metadata registration to the scheduler — a
  // synchronous RPC, as dask's scatter is: wait for the acknowledgement.
  if (inform_scheduler) {
    auto ack = std::make_shared<exec::Channel<Ack>>(*engine_);
    SchedMsg reg(SchedMsgKind::kUpdateData);
    reg.cause = cause;
    reg.key = std::move(key);  // last use; the worker push copied above
    reg.worker = worker;
    reg.bytes = payload_bytes;
    reg.external = external;
    reg.reply_worker = ack;
    reg.notify = notify_;
    const int shard = shard_of(reg.key);
    co_await send_to_scheduler(std::move(reg), exec::Delivery::kReliable,
                               shard);
    const Ack a = co_await ack->recv();
    // The synchronous registration gates whatever this client does next
    // (DEISA1: the next timestep's push) — remember it as provenance.
    if (a.cause != 0) last_cause_ = a.cause;
    co_return a.code;
  }
  co_return worker;
}

exec::Co<std::vector<int>> Client::scatter_batch(
    std::vector<std::pair<Key, Data>> items, int worker, bool external,
    std::uint64_t cause) {
  if (items.empty()) co_return std::vector<int>();
  DEISA_CHECK(worker >= 0 && static_cast<std::size_t>(worker) < workers_.size(),
              "scatter to unknown worker " << worker);
  const WorkerRef& ref = workers_[static_cast<std::size_t>(worker)];
  std::uint64_t total = 0;
  for (const auto& [key, data] : items) total += data.bytes;
  SchedMsg reg(SchedMsgKind::kUpdateData);
  reg.cause = cause;
  reg.worker = worker;
  reg.external = external;
  for (const auto& [key, data] : items) {
    reg.keys.push_back(key);
    reg.sizes.push_back(data.bytes);
  }
  if (plane_ == DataPlane::kProxy && depot_ != nullptr) {
    // 1) Proxy plane: deposit every payload locally and push one coalesced
    // frame of ownership tokens — the wire carries handles, not blocks.
    std::size_t key_bytes = 0;
    std::vector<std::pair<Key, Data>> tokens;
    tokens.reserve(items.size());
    for (auto& [key, data] : items) {
      key_bytes += key.size();
      ProxyHandle handle(node_, data.bytes,
                         cause != 0 ? cause : data.cause);
      obs::count_referenced(data.bytes);
      depot_->deposit(key, std::move(data), node_);
      tokens.emplace_back(std::move(key), make_proxy_data(handle));
    }
    co_await cluster_->send_control(
        node_, ref.node,
        items.size() * exec::Transport::kTokenBytes + key_bytes);
    WorkerMsg push(WorkerMsgKind::kReceiveDataBatch);
    push.cause = cause;
    push.batch = std::move(tokens);
    ref.inbox->send(std::move(push));
  } else {
    // 1) Copy plane: one bulk transfer for the whole batch — the payloads
    // share a single wire frame instead of paying the per-message floor
    // each.
    co_await cluster_->transfer(node_, ref.node,
                                std::max(total, kMinTransferBytes));
    obs::count_moved(total);
    WorkerMsg push(WorkerMsgKind::kReceiveDataBatch);
    push.cause = cause;
    push.batch = std::move(items);
    ref.inbox->send(std::move(push));
  }
  if (shard_inboxes_.size() > 1)
    co_return co_await register_batch_sharded(std::move(reg));
  // 2) One batched registration RPC; per-key acks come back together.
  auto acks = std::make_shared<exec::Channel<std::vector<int>>>(*engine_);
  reg.reply_acks = acks;
  reg.notify = notify_;
  co_await send_to_scheduler(std::move(reg));
  co_return co_await acks->recv();
}

exec::Co<std::vector<int>> Client::register_batch_sharded(SchedMsg reg) {
  // 2') Sharded: one batched registration RPC per owner shard. All the
  // sends go out before any ack is awaited so the shards register
  // concurrently; acks are reassembled into item order.
  const int n = static_cast<int>(shard_inboxes_.size());
  std::vector<SchedMsg> slices;
  std::vector<std::shared_ptr<exec::Channel<std::vector<int>>>> acks(
      static_cast<std::size_t>(n));
  std::vector<std::vector<std::size_t>> positions(static_cast<std::size_t>(n));
  slices.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    slices.emplace_back(SchedMsgKind::kUpdateData);
    slices.back().cause = reg.cause;
    slices.back().worker = reg.worker;
    slices.back().external = reg.external;
  }
  for (std::size_t i = 0; i < reg.keys.size(); ++i) {
    const auto s = static_cast<std::size_t>(shard_of(reg.keys[i]));
    positions[s].push_back(i);
    slices[s].keys.push_back(std::move(reg.keys[i]));
    slices[s].sizes.push_back(reg.sizes[i]);
  }
  for (int s = 0; s < n; ++s) {
    auto& slice = slices[static_cast<std::size_t>(s)];
    if (slice.keys.empty()) continue;
    acks[static_cast<std::size_t>(s)] =
        std::make_shared<exec::Channel<std::vector<int>>>(*engine_);
    slice.reply_acks = acks[static_cast<std::size_t>(s)];
    slice.notify = notify_;
    co_await send_to_scheduler(std::move(slice), exec::Delivery::kReliable, s);
  }
  std::vector<int> out(reg.keys.size(), 0);
  for (int s = 0; s < n; ++s) {
    if (!acks[static_cast<std::size_t>(s)]) continue;
    const std::vector<int> got =
        co_await acks[static_cast<std::size_t>(s)]->recv();
    const auto& pos = positions[static_cast<std::size_t>(s)];
    DEISA_ASSERT(got.size() == pos.size(), "shard ack count mismatch");
    for (std::size_t j = 0; j < got.size(); ++j) out[pos[j]] = got[j];
  }
  co_return out;
}

exec::Co<RepushList> Client::repush_keys() {
  // Re-armed keys live in the repush buffer of the shard that OWNS each
  // key, so the drain must fan out over every shard and merge — querying
  // only shard 0 would leave assignments on other shards to expire.
  const int n = std::max<int>(1, static_cast<int>(shard_inboxes_.size()));
  RepushList merged;
  for (int s = 0; s < n; ++s) {
    auto reply = std::make_shared<exec::Channel<RepushList>>(*engine_);
    SchedMsg msg(SchedMsgKind::kRepushKeys);
    msg.reply_repush = reply;
    co_await send_to_scheduler(std::move(msg), exec::Delivery::kReliable, s);
    RepushList part = co_await reply->recv();
    if (merged.empty())
      merged = std::move(part);
    else
      merged.insert(merged.end(), std::make_move_iterator(part.begin()),
                    std::make_move_iterator(part.end()));
  }
  co_return merged;
}

exec::Co<int> Client::wait_key(const Key& key) {
  auto reply = std::make_shared<exec::Channel<Ack>>(*engine_);
  SchedMsg msg(SchedMsgKind::kWaitKey);
  msg.key = key;
  msg.reply_worker = reply;
  co_await send_to_scheduler(std::move(msg), exec::Delivery::kReliable,
                             shard_of(key));
  const Ack ack = co_await reply->recv();
  DEISA_CHECK(ack.code != -2, "task erred: " << key);
  // The wait observed a completion: whatever this client does next
  // (submit the following batch, gather) was enabled by it.
  if (ack.cause != 0) last_cause_ = ack.cause;
  co_return ack.code;
}

exec::Co<Data> Client::gather(const Key& key) {
  const int worker = co_await wait_key(key);
  const WorkerRef& ref = workers_[static_cast<std::size_t>(worker)];
  auto reply = std::make_shared<exec::Channel<Data>>(*engine_);
  co_await cluster_->send_control(node_, ref.node,
                                  kControlMsgBase + key.size());
  WorkerMsg req(WorkerMsgKind::kGetData);
  req.key = key;
  req.requester_node = node_;
  req.reply_data = reply;
  ref.inbox->send(std::move(req));
  Data d = co_await reply->recv();
  if (d.cause != 0) last_cause_ = d.cause;
  if (const ProxyHandle* h = as_proxy(d)) {
    // The owner forwarded an unresolved handle instead of materializing
    // the payload on our behalf: pull it straight from the depot origin.
    const ProxyHandle handle = *h;
    const std::uint64_t push_cause = d.cause;
    if (handle.location != node_) {
      co_await cluster_->transfer(handle.location, node_,
                                  std::max(handle.bytes, kMinTransferBytes));
      obs::count_moved(handle.bytes);
    } else {
      obs::count_referenced(handle.bytes);
    }
    Data real;
    DEISA_CHECK(depot_ != nullptr && depot_->fetch(key, real),
                "gathered proxy deposit missing for '" << key << "'");
    if (push_cause != 0) real.cause = push_cause;
    d = std::move(real);
  }
  co_return d;
}

exec::Co<void> Client::variable_set(const std::string& name, Data value) {
  SchedMsg msg(SchedMsgKind::kVariableSet);
  msg.name = name;
  msg.payload = std::move(value);
  // Variables/queues are name-keyed state: both ends of an exchange hash
  // the name to the same owning shard.
  co_await send_to_scheduler(std::move(msg), exec::Delivery::kReliable,
                             shard_of(name));
}

exec::Co<Data> Client::variable_get(const std::string& name) {
  auto reply = std::make_shared<exec::Channel<Data>>(*engine_);
  SchedMsg msg(SchedMsgKind::kVariableGet);
  msg.name = name;
  msg.reply_data = reply;
  co_await send_to_scheduler(std::move(msg), exec::Delivery::kReliable,
                             shard_of(name));
  Data d = co_await reply->recv();
  if (d.cause != 0) last_cause_ = d.cause;
  co_return d;
}

exec::Co<void> Client::queue_put(const std::string& name, Data value) {
  auto ack = std::make_shared<exec::Channel<Ack>>(*engine_);
  SchedMsg msg(SchedMsgKind::kQueuePut);
  msg.name = name;
  msg.payload = std::move(value);
  msg.reply_worker = ack;  // Queue.put is synchronous in dask
  co_await send_to_scheduler(std::move(msg), exec::Delivery::kReliable,
                             shard_of(name));
  (void)co_await ack->recv();
}

exec::Co<Data> Client::queue_get(const std::string& name) {
  auto reply = std::make_shared<exec::Channel<Data>>(*engine_);
  SchedMsg msg(SchedMsgKind::kQueueGet);
  msg.name = name;
  msg.reply_data = reply;
  co_await send_to_scheduler(std::move(msg), exec::Delivery::kReliable,
                             shard_of(name));
  Data d = co_await reply->recv();
  if (d.cause != 0) last_cause_ = d.cause;
  co_return d;
}

exec::Co<void> Client::run_heartbeats(double interval, exec::Event& stop) {
  if (interval <= 0.0) co_return;  // the paper's "infinite interval"
  while (!stop.is_set()) {
    co_await engine_->delay(interval);
    if (stop.is_set()) co_return;
    SchedMsg hb(SchedMsgKind::kHeartbeatBridge);
    hb.worker = id_;
    co_await send_to_scheduler(std::move(hb), exec::Delivery::kDroppable);
  }
}

exec::Co<void> Client::cancel(const Key& key) {
  auto ack = std::make_shared<exec::Channel<Ack>>(*engine_);
  SchedMsg msg(SchedMsgKind::kCancelKey);
  msg.key = key;
  msg.reply_worker = ack;
  co_await send_to_scheduler(std::move(msg), exec::Delivery::kReliable,
                             shard_of(key));
  (void)co_await ack->recv();
}

exec::Co<void> Client::send_shutdown() {
  const int n = std::max<int>(1, static_cast<int>(shard_inboxes_.size()));
  for (int s = 0; s < n; ++s) {
    SchedMsg msg(SchedMsgKind::kShutdown);
    co_await send_to_scheduler(std::move(msg), exec::Delivery::kReliable, s);
  }
}

}  // namespace deisa::dts
