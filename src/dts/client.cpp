#include "deisa/dts/client.hpp"

#include "deisa/obs/dataplane.hpp"

namespace deisa::dts {

Client::Client(exec::Executor& engine, exec::Transport& cluster, int id, int node,
               int scheduler_node, exec::Channel<SchedMsg>* scheduler_inbox,
               std::vector<WorkerRef> workers)
    : engine_(&engine),
      cluster_(&cluster),
      id_(id),
      node_(node),
      scheduler_node_(scheduler_node),
      scheduler_inbox_(scheduler_inbox),
      workers_(std::move(workers)) {}

exec::Co<void> Client::send_to_scheduler(SchedMsg msg,
                                        exec::Delivery delivery) {
  ++messages_sent_;
  msg.sender_node = node_;
  msg.sender_client = id_;
  const exec::SendResult res = co_await cluster_->send_control(
      node_, scheduler_node_, wire_bytes(msg), delivery);
  // Fault injection decides delivery; the caller enqueues the copies
  // (0 = dropped, 2 = duplicated — only for non-reliable traffic).
  for (int i = 1; i < res.copies; ++i) scheduler_inbox_->send(msg);
  if (res.copies > 0) scheduler_inbox_->send(std::move(msg));
}

exec::Co<void> Client::submit(std::vector<TaskSpec> tasks,
                             std::vector<Key> wants) {
  SchedMsg msg(SchedMsgKind::kUpdateGraph);
  // Stamp the submission with the provenance of the last payload we saw:
  // per-step graphs triggered by queue tokens or gathered results chain
  // onto their trigger instead of starting a disconnected causal root.
  msg.cause = last_cause_;
  msg.tasks = std::move(tasks);
  msg.wants = std::move(wants);
  co_await send_to_scheduler(std::move(msg));
}

exec::Co<std::vector<Future>> Client::external_futures(
    std::vector<Key> keys, std::vector<int> preferred_workers) {
  std::vector<Future> futures;
  futures.reserve(keys.size());
  for (const Key& k : keys) futures.emplace_back(k, this);
  SchedMsg msg(SchedMsgKind::kCreateExternal);
  msg.keys = std::move(keys);
  msg.preferred_workers = std::move(preferred_workers);
  co_await send_to_scheduler(std::move(msg));
  co_return futures;
}

exec::Co<int> Client::scatter(Key key, Data data, int worker, bool external,
                             bool inform_scheduler, std::uint64_t cause) {
  DEISA_CHECK(worker >= 0 && static_cast<std::size_t>(worker) < workers_.size(),
              "scatter to unknown worker " << worker);
  const WorkerRef& ref = workers_[static_cast<std::size_t>(worker)];
  const std::uint64_t payload_bytes = data.bytes;
  if (plane_ == DataPlane::kProxy && depot_ != nullptr) {
    // 1) Proxy plane: the payload stays in the sender's depot; only a
    // token-sized ownership handle crosses the wire. Bytes move lazily,
    // on the worker's first dereference.
    ProxyHandle handle(node_, payload_bytes,
                       cause != 0 ? cause : data.cause);
    depot_->deposit(key, std::move(data), node_);
    obs::count_referenced(payload_bytes);
    co_await cluster_->transfer_token(node_, ref.node, key.size());
    WorkerMsg push(WorkerMsgKind::kReceiveData);
    push.cause = cause;
    push.key = key;
    push.payload = make_proxy_data(handle);
    ref.inbox->send(std::move(push));
  } else {
    // 1) Copy plane: bulk payload straight to the worker ...
    const std::uint64_t bytes = std::max(payload_bytes, kMinTransferBytes);
    co_await cluster_->transfer(node_, ref.node, bytes);
    obs::count_moved(payload_bytes);
    WorkerMsg push(WorkerMsgKind::kReceiveData);
    push.cause = cause;
    push.key = key;
    push.payload = std::move(data);
    ref.inbox->send(std::move(push));
  }
  // 2) ... and the metadata registration to the scheduler — a
  // synchronous RPC, as dask's scatter is: wait for the acknowledgement.
  if (inform_scheduler) {
    auto ack = std::make_shared<exec::Channel<Ack>>(*engine_);
    SchedMsg reg(SchedMsgKind::kUpdateData);
    reg.cause = cause;
    reg.key = std::move(key);  // last use; the worker push copied above
    reg.worker = worker;
    reg.bytes = payload_bytes;
    reg.external = external;
    reg.reply_worker = ack;
    reg.notify = notify_;
    co_await send_to_scheduler(std::move(reg));
    const Ack a = co_await ack->recv();
    // The synchronous registration gates whatever this client does next
    // (DEISA1: the next timestep's push) — remember it as provenance.
    if (a.cause != 0) last_cause_ = a.cause;
    co_return a.code;
  }
  co_return worker;
}

exec::Co<std::vector<int>> Client::scatter_batch(
    std::vector<std::pair<Key, Data>> items, int worker, bool external,
    std::uint64_t cause) {
  if (items.empty()) co_return std::vector<int>();
  DEISA_CHECK(worker >= 0 && static_cast<std::size_t>(worker) < workers_.size(),
              "scatter to unknown worker " << worker);
  const WorkerRef& ref = workers_[static_cast<std::size_t>(worker)];
  std::uint64_t total = 0;
  for (const auto& [key, data] : items) total += data.bytes;
  SchedMsg reg(SchedMsgKind::kUpdateData);
  reg.cause = cause;
  reg.worker = worker;
  reg.external = external;
  for (const auto& [key, data] : items) {
    reg.keys.push_back(key);
    reg.sizes.push_back(data.bytes);
  }
  if (plane_ == DataPlane::kProxy && depot_ != nullptr) {
    // 1) Proxy plane: deposit every payload locally and push one coalesced
    // frame of ownership tokens — the wire carries handles, not blocks.
    std::size_t key_bytes = 0;
    std::vector<std::pair<Key, Data>> tokens;
    tokens.reserve(items.size());
    for (auto& [key, data] : items) {
      key_bytes += key.size();
      ProxyHandle handle(node_, data.bytes,
                         cause != 0 ? cause : data.cause);
      obs::count_referenced(data.bytes);
      depot_->deposit(key, std::move(data), node_);
      tokens.emplace_back(std::move(key), make_proxy_data(handle));
    }
    co_await cluster_->send_control(
        node_, ref.node,
        items.size() * exec::Transport::kTokenBytes + key_bytes);
    WorkerMsg push(WorkerMsgKind::kReceiveDataBatch);
    push.cause = cause;
    push.batch = std::move(tokens);
    ref.inbox->send(std::move(push));
  } else {
    // 1) Copy plane: one bulk transfer for the whole batch — the payloads
    // share a single wire frame instead of paying the per-message floor
    // each.
    co_await cluster_->transfer(node_, ref.node,
                                std::max(total, kMinTransferBytes));
    obs::count_moved(total);
    WorkerMsg push(WorkerMsgKind::kReceiveDataBatch);
    push.cause = cause;
    push.batch = std::move(items);
    ref.inbox->send(std::move(push));
  }
  // 2) One batched registration RPC; per-key acks come back together.
  auto acks = std::make_shared<exec::Channel<std::vector<int>>>(*engine_);
  reg.reply_acks = acks;
  reg.notify = notify_;
  co_await send_to_scheduler(std::move(reg));
  co_return co_await acks->recv();
}

exec::Co<RepushList> Client::repush_keys() {
  auto reply = std::make_shared<exec::Channel<RepushList>>(*engine_);
  SchedMsg msg(SchedMsgKind::kRepushKeys);
  msg.reply_repush = reply;
  co_await send_to_scheduler(std::move(msg));
  co_return co_await reply->recv();
}

exec::Co<int> Client::wait_key(const Key& key) {
  auto reply = std::make_shared<exec::Channel<Ack>>(*engine_);
  SchedMsg msg(SchedMsgKind::kWaitKey);
  msg.key = key;
  msg.reply_worker = reply;
  co_await send_to_scheduler(std::move(msg));
  const Ack ack = co_await reply->recv();
  DEISA_CHECK(ack.code != -2, "task erred: " << key);
  // The wait observed a completion: whatever this client does next
  // (submit the following batch, gather) was enabled by it.
  if (ack.cause != 0) last_cause_ = ack.cause;
  co_return ack.code;
}

exec::Co<Data> Client::gather(const Key& key) {
  const int worker = co_await wait_key(key);
  const WorkerRef& ref = workers_[static_cast<std::size_t>(worker)];
  auto reply = std::make_shared<exec::Channel<Data>>(*engine_);
  co_await cluster_->send_control(node_, ref.node,
                                  kControlMsgBase + key.size());
  WorkerMsg req(WorkerMsgKind::kGetData);
  req.key = key;
  req.requester_node = node_;
  req.reply_data = reply;
  ref.inbox->send(std::move(req));
  Data d = co_await reply->recv();
  if (d.cause != 0) last_cause_ = d.cause;
  if (const ProxyHandle* h = as_proxy(d)) {
    // The owner forwarded an unresolved handle instead of materializing
    // the payload on our behalf: pull it straight from the depot origin.
    const ProxyHandle handle = *h;
    const std::uint64_t push_cause = d.cause;
    if (handle.location != node_) {
      co_await cluster_->transfer(handle.location, node_,
                                  std::max(handle.bytes, kMinTransferBytes));
      obs::count_moved(handle.bytes);
    } else {
      obs::count_referenced(handle.bytes);
    }
    Data real;
    DEISA_CHECK(depot_ != nullptr && depot_->fetch(key, real),
                "gathered proxy deposit missing for '" << key << "'");
    if (push_cause != 0) real.cause = push_cause;
    d = std::move(real);
  }
  co_return d;
}

exec::Co<void> Client::variable_set(const std::string& name, Data value) {
  SchedMsg msg(SchedMsgKind::kVariableSet);
  msg.name = name;
  msg.payload = std::move(value);
  co_await send_to_scheduler(std::move(msg));
}

exec::Co<Data> Client::variable_get(const std::string& name) {
  auto reply = std::make_shared<exec::Channel<Data>>(*engine_);
  SchedMsg msg(SchedMsgKind::kVariableGet);
  msg.name = name;
  msg.reply_data = reply;
  co_await send_to_scheduler(std::move(msg));
  Data d = co_await reply->recv();
  if (d.cause != 0) last_cause_ = d.cause;
  co_return d;
}

exec::Co<void> Client::queue_put(const std::string& name, Data value) {
  auto ack = std::make_shared<exec::Channel<Ack>>(*engine_);
  SchedMsg msg(SchedMsgKind::kQueuePut);
  msg.name = name;
  msg.payload = std::move(value);
  msg.reply_worker = ack;  // Queue.put is synchronous in dask
  co_await send_to_scheduler(std::move(msg));
  (void)co_await ack->recv();
}

exec::Co<Data> Client::queue_get(const std::string& name) {
  auto reply = std::make_shared<exec::Channel<Data>>(*engine_);
  SchedMsg msg(SchedMsgKind::kQueueGet);
  msg.name = name;
  msg.reply_data = reply;
  co_await send_to_scheduler(std::move(msg));
  Data d = co_await reply->recv();
  if (d.cause != 0) last_cause_ = d.cause;
  co_return d;
}

exec::Co<void> Client::run_heartbeats(double interval, exec::Event& stop) {
  if (interval <= 0.0) co_return;  // the paper's "infinite interval"
  while (!stop.is_set()) {
    co_await engine_->delay(interval);
    if (stop.is_set()) co_return;
    SchedMsg hb(SchedMsgKind::kHeartbeatBridge);
    hb.worker = id_;
    co_await send_to_scheduler(std::move(hb), exec::Delivery::kDroppable);
  }
}

exec::Co<void> Client::cancel(const Key& key) {
  auto ack = std::make_shared<exec::Channel<Ack>>(*engine_);
  SchedMsg msg(SchedMsgKind::kCancelKey);
  msg.key = key;
  msg.reply_worker = ack;
  co_await send_to_scheduler(std::move(msg));
  (void)co_await ack->recv();
}

exec::Co<void> Client::send_shutdown() {
  SchedMsg msg(SchedMsgKind::kShutdown);
  co_await send_to_scheduler(std::move(msg));
}

}  // namespace deisa::dts
