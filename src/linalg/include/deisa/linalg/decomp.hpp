// Matrix decompositions: Householder QR, one-sided Jacobi SVD, and the
// randomized truncated SVD of Halko et al. — the `svd_solver='randomized'`
// path the paper's Listing 2 selects for the in situ incremental PCA.
#pragma once

#include <cstdint>
#include <vector>

#include "deisa/linalg/matrix.hpp"

namespace deisa::linalg {

struct QrResult {
  Matrix q;  // m x n, orthonormal columns (thin)
  Matrix r;  // n x n, upper triangular
};

/// Thin Householder QR of an m x n matrix with m >= n.
QrResult qr_thin(const Matrix& a);

struct SvdResult {
  Matrix u;               // m x k, orthonormal columns
  std::vector<double> s;  // k singular values, descending
  Matrix v;               // n x k, orthonormal columns (A = U diag(s) V^T)
};

/// Full thin SVD by one-sided Jacobi (robust, O(mn^2) per sweep).
/// Works for any m, n (internally transposes when m < n).
SvdResult svd(const Matrix& a);

/// Randomized truncated SVD: rank-k approximation with `oversample` extra
/// probe vectors and `power_iters` subspace iterations (Halko, Martinsson,
/// Tropp 2011). Deterministic for a fixed seed.
SvdResult randomized_svd(const Matrix& a, std::size_t k,
                         std::size_t oversample = 10,
                         std::size_t power_iters = 2,
                         std::uint64_t seed = 0x5eed);

/// Reconstruct U * diag(s) * V^T (tests and error measures).
Matrix svd_reconstruct(const SvdResult& r);

}  // namespace deisa::linalg
