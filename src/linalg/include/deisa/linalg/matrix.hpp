// Dense column-major double matrix used by the PCA/IPCA analytics.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace deisa::linalg {

class Matrix {
public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Row-major convenience constructor for tests:
  /// Matrix::from_rows({{1,2},{3,4}}).
  static Matrix from_rows(
      std::initializer_list<std::initializer_list<double>> rows);
  static Matrix identity(std::size_t n);
  /// Build from a contiguous row-major buffer of rows*cols doubles (the
  /// NDArray layout): transposes into column-major storage column by
  /// column, without per-element index vectors.
  static Matrix from_row_major(std::size_t rows, std::size_t cols,
                               std::span<const double> values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) {
    return data_[j * rows_ + i];
  }
  double operator()(std::size_t i, std::size_t j) const {
    return data_[j * rows_ + i];
  }

  /// Contiguous storage of column j.
  std::span<double> col(std::size_t j) {
    return {data_.data() + j * rows_, rows_};
  }
  std::span<const double> col(std::size_t j) const {
    return {data_.data() + j * rows_, rows_};
  }

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  Matrix transposed() const;

  /// Vertical concatenation: rows of `below` appended under *this.
  Matrix vstack(const Matrix& below) const;

  /// Extract a block [r0, r0+nr) x [c0, c0+nc).
  Matrix block(std::size_t r0, std::size_t c0, std::size_t nr,
               std::size_t nc) const;

  /// Row i as a vector (copies).
  std::vector<double> row(std::size_t i) const;

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B.
Matrix matmul(const Matrix& a, const Matrix& b);
/// C = A^T * B without materializing A^T.
Matrix matmul_tn(const Matrix& a, const Matrix& b);
/// y = A * x.
std::vector<double> matvec(const Matrix& a, std::span<const double> x);

Matrix operator+(const Matrix& a, const Matrix& b);
Matrix operator-(const Matrix& a, const Matrix& b);
Matrix operator*(double s, const Matrix& a);

double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);
/// Frobenius norm.
double frobenius(const Matrix& a);
/// max_ij |a_ij - b_ij|; shapes must match.
double max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace deisa::linalg
