#include "deisa/linalg/matrix.hpp"

#include <cmath>

#include "deisa/util/error.hpp"

namespace deisa::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::from_rows(
    std::initializer_list<std::initializer_list<double>> rows) {
  const std::size_t nr = rows.size();
  DEISA_CHECK(nr > 0, "from_rows needs at least one row");
  const std::size_t nc = rows.begin()->size();
  Matrix m(nr, nc);
  std::size_t i = 0;
  for (const auto& r : rows) {
    DEISA_CHECK(r.size() == nc, "ragged rows in from_rows");
    std::size_t j = 0;
    for (double v : r) m(i, j++) = v;
    ++i;
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::from_row_major(std::size_t rows, std::size_t cols,
                              std::span<const double> values) {
  DEISA_CHECK(values.size() == rows * cols,
              "from_row_major size mismatch: " << values.size() << " values "
                                               << "for " << rows << "x"
                                               << cols);
  Matrix m(rows, cols);
  const double* src = values.data();
  for (std::size_t j = 0; j < cols; ++j) {
    const auto mj = m.col(j);
    const double* sp = src + j;
    for (std::size_t i = 0; i < rows; ++i) {
      mj[i] = *sp;
      sp += cols;
    }
  }
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t j = 0; j < cols_; ++j) {
    const auto src = col(j);
    double* dst = t.data().data() + j;
    for (std::size_t i = 0; i < rows_; ++i) dst[i * cols_] = src[i];
  }
  return t;
}

Matrix Matrix::vstack(const Matrix& below) const {
  if (empty()) return below;
  if (below.empty()) return *this;
  DEISA_CHECK(cols_ == below.cols_, "vstack column mismatch: "
                                        << cols_ << " vs " << below.cols_);
  Matrix out(rows_ + below.rows_, cols_);
  for (std::size_t j = 0; j < cols_; ++j) {
    const auto a = col(j);
    const auto b = below.col(j);
    const auto o = out.col(j);
    std::copy(a.begin(), a.end(), o.begin());
    std::copy(b.begin(), b.end(),
              o.begin() + static_cast<std::ptrdiff_t>(rows_));
  }
  return out;
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t nr,
                     std::size_t nc) const {
  DEISA_CHECK(r0 + nr <= rows_ && c0 + nc <= cols_,
              "block out of range: (" << r0 << "," << c0 << ")+(" << nr << ","
                                      << nc << ") in " << rows_ << "x"
                                      << cols_);
  Matrix out(nr, nc);
  for (std::size_t j = 0; j < nc; ++j) {
    const auto src = col(c0 + j).subspan(r0, nr);
    std::copy(src.begin(), src.end(), out.col(j).begin());
  }
  return out;
}

std::vector<double> Matrix::row(std::size_t i) const {
  std::vector<double> out(cols_);
  for (std::size_t j = 0; j < cols_; ++j) out[j] = (*this)(i, j);
  return out;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  DEISA_CHECK(a.cols() == b.rows(), "matmul shape mismatch: "
                                        << a.rows() << "x" << a.cols() << " * "
                                        << b.rows() << "x" << b.cols());
  Matrix c(a.rows(), b.cols());
  // j-i-tiled-k loops over the raw column spans: for each output column,
  // a tile of c's rows stays register/L1-resident while the whole k sweep
  // runs over it. Per output element the k additions still happen in
  // ascending k order (and zero b(k,j) terms are still skipped), so the
  // result is bit-identical to the untiled j-k-i kernel.
  constexpr std::size_t kRowTile = 256;
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const double* ad = a.data().data();
  for (std::size_t j = 0; j < b.cols(); ++j) {
    double* cj = c.col(j).data();
    const double* bj = b.col(j).data();
    for (std::size_t i0 = 0; i0 < m; i0 += kRowTile) {
      const std::size_t i1 = std::min(m, i0 + kRowTile);
      for (std::size_t k = 0; k < n; ++k) {
        const double bkj = bj[k];
        if (bkj == 0.0) continue;
        const double* ak = ad + k * m;
        for (std::size_t i = i0; i < i1; ++i) cj[i] += ak[i] * bkj;
      }
    }
  }
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  DEISA_CHECK(a.rows() == b.rows(), "matmul_tn shape mismatch");
  Matrix c(a.cols(), b.cols());
  // Both operands are read column-wise (contiguous spans); each output
  // element is one sequential dot, so accumulation order is unchanged.
  for (std::size_t j = 0; j < b.cols(); ++j) {
    const auto bj = b.col(j);
    double* cj = c.col(j).data();
    for (std::size_t i = 0; i < a.cols(); ++i) cj[i] = dot(a.col(i), bj);
  }
  return c;
}

std::vector<double> matvec(const Matrix& a, std::span<const double> x) {
  DEISA_CHECK(a.cols() == x.size(), "matvec shape mismatch");
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t j = 0; j < a.cols(); ++j) {
    const auto aj = a.col(j);
    const double xj = x[j];
    for (std::size_t i = 0; i < a.rows(); ++i) y[i] += aj[i] * xj;
  }
  return y;
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  DEISA_CHECK(a.same_shape(b), "matrix addition shape mismatch");
  Matrix c = a;
  auto cd = c.data();
  auto bd = b.data();
  for (std::size_t i = 0; i < cd.size(); ++i) cd[i] += bd[i];
  return c;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  DEISA_CHECK(a.same_shape(b), "matrix subtraction shape mismatch");
  Matrix c = a;
  auto cd = c.data();
  auto bd = b.data();
  for (std::size_t i = 0; i < cd.size(); ++i) cd[i] -= bd[i];
  return c;
}

Matrix operator*(double s, const Matrix& a) {
  Matrix c = a;
  for (double& v : c.data()) v *= s;
  return c;
}

double dot(std::span<const double> a, std::span<const double> b) {
  DEISA_CHECK(a.size() == b.size(), "dot length mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

double frobenius(const Matrix& a) { return norm2(a.data()); }

double max_abs_diff(const Matrix& a, const Matrix& b) {
  DEISA_CHECK(a.same_shape(b), "max_abs_diff shape mismatch");
  double m = 0.0;
  auto ad = a.data();
  auto bd = b.data();
  for (std::size_t i = 0; i < ad.size(); ++i)
    m = std::max(m, std::abs(ad[i] - bd[i]));
  return m;
}

}  // namespace deisa::linalg
