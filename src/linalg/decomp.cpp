#include "deisa/linalg/decomp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "deisa/util/error.hpp"
#include "deisa/util/rng.hpp"

namespace deisa::linalg {

QrResult qr_thin(const Matrix& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  DEISA_CHECK(m >= n, "qr_thin requires rows >= cols, got " << m << "x" << n);
  Matrix r = a;  // reduced in place
  // Householder vectors, stored per step.
  std::vector<std::vector<double>> vs(n);

  for (std::size_t k = 0; k < n; ++k) {
    // Build the reflector for column k below the diagonal.
    std::vector<double> v(m - k);
    for (std::size_t i = k; i < m; ++i) v[i - k] = r(i, k);
    const double alpha = norm2(v);
    if (alpha == 0.0) {
      vs[k] = std::move(v);  // zero column: identity reflector
      for (double& x : vs[k]) x = 0.0;
      continue;
    }
    const double sign = v[0] >= 0.0 ? 1.0 : -1.0;
    v[0] += sign * alpha;
    const double vnorm = norm2(v);
    if (vnorm > 0.0)
      for (double& x : v) x /= vnorm;
    // Apply H = I - 2 v v^T to the trailing block of R.
    for (std::size_t j = k; j < n; ++j) {
      double proj = 0.0;
      for (std::size_t i = k; i < m; ++i) proj += v[i - k] * r(i, j);
      proj *= 2.0;
      for (std::size_t i = k; i < m; ++i) r(i, j) -= proj * v[i - k];
    }
    vs[k] = std::move(v);
  }

  // Q = H_0 H_1 ... H_{n-1} * [I_n; 0]  (thin).
  Matrix q(m, n);
  for (std::size_t j = 0; j < n; ++j) q(j, j) = 1.0;
  for (std::size_t k = n; k-- > 0;) {
    const auto& v = vs[k];
    for (std::size_t j = 0; j < n; ++j) {
      double proj = 0.0;
      for (std::size_t i = k; i < m; ++i) proj += v[i - k] * q(i, j);
      proj *= 2.0;
      for (std::size_t i = k; i < m; ++i) q(i, j) -= proj * v[i - k];
    }
  }

  // Zero the sub-diagonal noise of R and truncate to n x n.
  Matrix r_out(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i <= j; ++i) r_out(i, j) = r(i, j);
  return {std::move(q), std::move(r_out)};
}

namespace {

/// One-sided Jacobi on an m x n matrix with m >= n: rotates column pairs
/// until all are pairwise orthogonal. Returns U (m x n), s (n), V (n x n).
SvdResult jacobi_tall(Matrix a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  DEISA_ASSERT(m >= n, "jacobi_tall requires m >= n");
  Matrix v = Matrix::identity(n);

  constexpr int kMaxSweeps = 64;
  constexpr double kTol = 1e-14;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    bool rotated = false;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        auto ap = a.col(p);
        auto aq = a.col(q);
        const double alpha = dot(ap, ap);
        const double beta = dot(aq, aq);
        const double gamma = dot(ap, aq);
        if (std::abs(gamma) <= kTol * std::sqrt(alpha * beta)) continue;
        rotated = true;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          const double x = ap[i];
          const double y = aq[i];
          ap[i] = c * x - s * y;
          aq[i] = s * x + c * y;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double x = v(i, p);
          const double y = v(i, q);
          v(i, p) = c * x - s * y;
          v(i, q) = s * x + c * y;
        }
      }
    }
    if (!rotated) break;
  }

  // Singular values are the column norms; normalize to get U.
  std::vector<double> s(n);
  Matrix u(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    const double nj = norm2(a.col(j));
    s[j] = nj;
    if (nj > 0.0)
      for (std::size_t i = 0; i < m; ++i) u(i, j) = a(i, j) / nj;
  }

  // Sort by descending singular value.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) { return s[x] > s[y]; });
  SvdResult out;
  out.u = Matrix(m, n);
  out.v = Matrix(n, n);
  out.s.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    out.s[j] = s[src];
    for (std::size_t i = 0; i < m; ++i) out.u(i, j) = u(i, src);
    for (std::size_t i = 0; i < n; ++i) out.v(i, j) = v(i, src);
  }
  return out;
}

}  // namespace

SvdResult svd(const Matrix& a) {
  DEISA_CHECK(!a.empty(), "svd of empty matrix");
  if (a.rows() >= a.cols()) return jacobi_tall(a);
  // A = U S V^T  <=>  A^T = V S U^T.
  SvdResult t = jacobi_tall(a.transposed());
  SvdResult out;
  out.u = std::move(t.v);
  out.v = std::move(t.u);
  out.s = std::move(t.s);
  return out;
}

SvdResult randomized_svd(const Matrix& a, std::size_t k, std::size_t oversample,
                         std::size_t power_iters, std::uint64_t seed) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  DEISA_CHECK(k >= 1, "randomized_svd needs k >= 1");
  const std::size_t rank_cap = std::min(m, n);
  k = std::min(k, rank_cap);
  const std::size_t p = std::min(k + oversample, rank_cap);

  util::Rng rng(seed);
  Matrix omega(n, p);
  for (double& x : omega.data()) x = rng.normal();

  Matrix q = qr_thin(matmul(a, omega)).q;  // m x p
  for (std::size_t it = 0; it < power_iters; ++it) {
    const Matrix z = qr_thin(matmul_tn(a, q)).q;  // n x p
    q = qr_thin(matmul(a, z)).q;
  }
  const Matrix b = matmul_tn(q, a);  // p x n
  SvdResult small = svd(b);
  SvdResult out;
  out.u = matmul(q, small.u.block(0, 0, p, std::min(k, small.u.cols())));
  const std::size_t kk = std::min(k, small.s.size());
  out.s.assign(small.s.begin(), small.s.begin() + static_cast<long>(kk));
  out.v = small.v.block(0, 0, n, kk);
  return out;
}

Matrix svd_reconstruct(const SvdResult& r) {
  Matrix us = r.u;
  for (std::size_t j = 0; j < us.cols(); ++j) {
    auto cj = us.col(j);
    for (double& x : cj) x *= r.s[j];
  }
  return matmul(us, r.v.transposed());
}

}  // namespace deisa::linalg
