#include "deisa/config/node.hpp"

#include <sstream>

#include "deisa/util/error.hpp"

namespace deisa::config {

using util::ConfigError;

Node::Kind Node::kind() const {
  return static_cast<Kind>(value_.index());
}

bool Node::is_scalar() const {
  const Kind k = kind();
  return k == Kind::kBool || k == Kind::kInt || k == Kind::kFloat ||
         k == Kind::kString;
}

namespace {
[[noreturn]] void kind_error(const char* wanted, Node::Kind got) {
  std::ostringstream oss;
  oss << "config node is not a " << wanted << " (kind=" << static_cast<int>(got)
      << ")";
  throw ConfigError(oss.str());
}
}  // namespace

bool Node::as_bool() const {
  if (const auto* b = std::get_if<bool>(&value_)) return *b;
  kind_error("bool", kind());
}

std::int64_t Node::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) return *i;
  kind_error("int", kind());
}

double Node::as_double() const {
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&value_))
    return static_cast<double>(*i);
  kind_error("float", kind());
}

const std::string& Node::as_string() const {
  if (const auto* s = std::get_if<std::string>(&value_)) return *s;
  kind_error("string", kind());
}

const Seq& Node::as_seq() const {
  if (const auto* s = std::get_if<Seq>(&value_)) return *s;
  kind_error("sequence", kind());
}

const Map& Node::as_map() const {
  if (const auto* m = std::get_if<Map>(&value_)) return *m;
  kind_error("map", kind());
}

const Node* Node::find(const std::string& key) const {
  const auto* m = std::get_if<Map>(&value_);
  if (m == nullptr) return nullptr;
  for (const auto& [k, v] : *m)
    if (k == key) return &v;
  return nullptr;
}

const Node& Node::at(const std::string& key) const {
  const Node* n = find(key);
  if (n == nullptr) throw ConfigError("missing config key: " + key);
  return *n;
}

const Node& Node::at(std::size_t index) const {
  const Seq& s = as_seq();
  if (index >= s.size())
    throw ConfigError("config sequence index " + std::to_string(index) +
                      " out of range (size " + std::to_string(s.size()) + ")");
  return s[index];
}

std::size_t Node::size() const {
  if (const auto* s = std::get_if<Seq>(&value_)) return s->size();
  if (const auto* m = std::get_if<Map>(&value_)) return m->size();
  return 0;
}

std::int64_t Node::get_int(const std::string& key, std::int64_t dflt) const {
  const Node* n = find(key);
  return n != nullptr ? n->as_int() : dflt;
}

double Node::get_double(const std::string& key, double dflt) const {
  const Node* n = find(key);
  return n != nullptr ? n->as_double() : dflt;
}

std::string Node::get_string(const std::string& key,
                             const std::string& dflt) const {
  const Node* n = find(key);
  return n != nullptr ? n->as_string() : dflt;
}

bool Node::get_bool(const std::string& key, bool dflt) const {
  const Node* n = find(key);
  return n != nullptr ? n->as_bool() : dflt;
}

void Node::set(const std::string& key, Node value) {
  if (is_null()) value_ = Map{};
  auto* m = std::get_if<Map>(&value_);
  if (m == nullptr) kind_error("map", kind());
  for (auto& [k, v] : *m) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  m->emplace_back(key, std::move(value));
}

void Node::push_back(Node value) {
  if (is_null()) value_ = Seq{};
  auto* s = std::get_if<Seq>(&value_);
  if (s == nullptr) kind_error("sequence", kind());
  s->push_back(std::move(value));
}

namespace {
void render(const Node& n, std::ostream& os) {
  switch (n.kind()) {
    case Node::Kind::kNull: os << "null"; break;
    case Node::Kind::kBool: os << (n.as_bool() ? "true" : "false"); break;
    case Node::Kind::kInt: os << n.as_int(); break;
    case Node::Kind::kFloat: os << n.as_double(); break;
    case Node::Kind::kString: os << '"' << n.as_string() << '"'; break;
    case Node::Kind::kSeq: {
      os << '[';
      bool first = true;
      for (const auto& e : n.as_seq()) {
        if (!first) os << ", ";
        first = false;
        render(e, os);
      }
      os << ']';
      break;
    }
    case Node::Kind::kMap: {
      os << '{';
      bool first = true;
      for (const auto& [k, v] : n.as_map()) {
        if (!first) os << ", ";
        first = false;
        os << k << ": ";
        render(v, os);
      }
      os << '}';
      break;
    }
  }
}
}  // namespace

std::string Node::to_string() const {
  std::ostringstream oss;
  render(*this, oss);
  return oss.str();
}

}  // namespace deisa::config
