#include "deisa/config/expr.hpp"

#include <cctype>
#include <charconv>

#include "deisa/util/error.hpp"

namespace deisa::config {

using util::ConfigError;

std::int64_t Value::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return *i;
  if (const auto* d = std::get_if<double>(&v_))
    return static_cast<std::int64_t>(*d);
  throw ConfigError("expression value is not a number");
}

double Value::as_double() const {
  if (const auto* d = std::get_if<double>(&v_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v_))
    return static_cast<double>(*i);
  throw ConfigError("expression value is not a number");
}

const std::string& Value::as_string() const {
  if (const auto* s = std::get_if<std::string>(&v_)) return *s;
  throw ConfigError("expression value is not a string");
}

const std::vector<Value>& Value::as_seq() const {
  if (const auto* s = std::get_if<std::vector<Value>>(&v_)) return *s;
  throw ConfigError("expression value is not a sequence");
}

const std::map<std::string, Value>& Value::as_map() const {
  if (const auto* m = std::get_if<std::map<std::string, Value>>(&v_)) return *m;
  throw ConfigError("expression value is not a map");
}

const Value& Value::field(const std::string& name) const {
  const auto& m = as_map();
  const auto it = m.find(name);
  if (it == m.end()) throw ConfigError("no field '" + name + "' in value");
  return it->second;
}

const Value& Value::index(std::int64_t i) const {
  const auto& s = as_seq();
  if (i < 0 || static_cast<std::size_t>(i) >= s.size())
    throw ConfigError("sequence index " + std::to_string(i) +
                      " out of range (size " + std::to_string(s.size()) + ")");
  return s[static_cast<std::size_t>(i)];
}

const Value& Env::get(const std::string& name) const {
  const auto it = vars_.find(name);
  if (it == vars_.end())
    throw ConfigError("undefined expression variable: $" + name);
  return it->second;
}

namespace {

class ExprParser {
public:
  ExprParser(std::string_view s, const Env& env) : s_(s), env_(env) {}

  Value parse() {
    Value v = parse_sum();
    skip_ws();
    if (pos_ != s_.size())
      throw ConfigError("trailing characters in expression: '" +
                        std::string(s_) + "'");
    return v;
  }

private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t')) ++pos_;
  }
  char peek() {
    skip_ws();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  static Value arith(char op, const Value& a, const Value& b) {
    if (a.is_int() && b.is_int()) {
      const std::int64_t x = a.as_int();
      const std::int64_t y = b.as_int();
      switch (op) {
        case '+': return Value{x + y};
        case '-': return Value{x - y};
        case '*': return Value{x * y};
        case '/':
          if (y == 0) throw ConfigError("division by zero in expression");
          return Value{x / y};
        case '%':
          if (y == 0) throw ConfigError("modulo by zero in expression");
          return Value{x % y};
        default: break;
      }
    }
    const double x = a.as_double();
    const double y = b.as_double();
    switch (op) {
      case '+': return Value{x + y};
      case '-': return Value{x - y};
      case '*': return Value{x * y};
      case '/':
        if (y == 0.0) throw ConfigError("division by zero in expression");
        return Value{x / y};
      case '%': throw ConfigError("modulo of non-integer values");
      default: throw ConfigError("unknown operator");
    }
  }

  Value parse_sum() {
    Value v = parse_term();
    while (true) {
      const char c = peek();
      if (c != '+' && c != '-') return v;
      ++pos_;
      v = arith(c, v, parse_term());
    }
  }

  Value parse_term() {
    Value v = parse_factor();
    while (true) {
      const char c = peek();
      if (c != '*' && c != '/' && c != '%') return v;
      ++pos_;
      v = arith(c, v, parse_factor());
    }
  }

  Value parse_factor() {
    const char c = peek();
    if (c == '(') {
      ++pos_;
      Value v = parse_sum();
      if (peek() != ')') throw ConfigError("missing ')' in expression");
      ++pos_;
      return v;
    }
    if (c == '-') {
      ++pos_;
      const Value v = parse_factor();
      if (v.is_int()) return Value{-v.as_int()};
      return Value{-v.as_double()};
    }
    if (c == '$') return parse_reference();
    return parse_number();
  }

  Value parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.'))
      ++pos_;
    if (start == pos_)
      throw ConfigError("expected number in expression: '" + std::string(s_) +
                        "' at offset " + std::to_string(pos_));
    std::string_view tok = s_.substr(start, pos_ - start);
    if (tok.find('.') == std::string_view::npos) {
      std::int64_t v = 0;
      auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (ec != std::errc() || ptr != tok.data() + tok.size())
        throw ConfigError("bad integer literal: " + std::string(tok));
      return Value{v};
    }
    double v = 0.0;
    auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
    if (ec != std::errc() || ptr != tok.data() + tok.size())
      throw ConfigError("bad float literal: " + std::string(tok));
    return Value{v};
  }

  std::string parse_ident() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '_'))
      ++pos_;
    if (start == pos_) throw ConfigError("expected identifier after '$'/'.'");
    return std::string(s_.substr(start, pos_ - start));
  }

  Value parse_reference() {
    ++pos_;  // '$'
    // PDI allows ${name}; accept and strip braces.
    bool braced = false;
    if (pos_ < s_.size() && s_[pos_] == '{') {
      braced = true;
      ++pos_;
    }
    const Value* v = &env_.get(parse_ident());
    while (pos_ < s_.size()) {
      if (s_[pos_] == '.') {
        ++pos_;
        v = &v->field(parse_ident());
      } else if (s_[pos_] == '[') {
        ++pos_;
        const Value idx = parse_sum();
        if (peek() != ']') throw ConfigError("missing ']' in expression");
        ++pos_;
        v = &v->index(idx.as_int());
      } else {
        break;
      }
    }
    if (braced) {
      if (pos_ >= s_.size() || s_[pos_] != '}')
        throw ConfigError("missing '}' in ${...} reference");
      ++pos_;
    }
    return *v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  const Env& env_;
};

bool looks_like_expression(std::string_view s) {
  return s.find('$') != std::string_view::npos;
}

}  // namespace

Value eval_expr(std::string_view expr, const Env& env) {
  if (!looks_like_expression(expr)) {
    // Literal-only strings still go through the parser when they contain
    // arithmetic; otherwise they are plain strings.
    bool numeric = !expr.empty();
    for (char c : expr) {
      if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.' &&
          c != ' ' && c != '+' && c != '-' && c != '*' && c != '/' &&
          c != '%' && c != '(' && c != ')') {
        numeric = false;
        break;
      }
    }
    if (!numeric) return Value{std::string(expr)};
  }
  return ExprParser(expr, env).parse();
}

std::int64_t eval_int(std::string_view expr, const Env& env) {
  const Value v = eval_expr(expr, env);
  if (!v.is_number())
    throw ConfigError("expression is not numeric: '" + std::string(expr) + "'");
  return v.as_int();
}

std::int64_t eval_node_int(const Node& node, const Env& env) {
  switch (node.kind()) {
    case Node::Kind::kInt: return node.as_int();
    case Node::Kind::kFloat: return static_cast<std::int64_t>(node.as_double());
    case Node::Kind::kString:
      return eval_int(std::string_view(node.as_string()), env);
    default:
      throw ConfigError("config node is not an integer or expression: " +
                        node.to_string());
  }
}

Value to_value(const Node& node) {
  switch (node.kind()) {
    case Node::Kind::kNull: return Value{std::int64_t{0}};
    case Node::Kind::kBool: return Value{std::int64_t{node.as_bool() ? 1 : 0}};
    case Node::Kind::kInt: return Value{node.as_int()};
    case Node::Kind::kFloat: return Value{node.as_double()};
    case Node::Kind::kString: return Value{node.as_string()};
    case Node::Kind::kSeq: {
      std::vector<Value> seq;
      seq.reserve(node.as_seq().size());
      for (const auto& e : node.as_seq()) seq.push_back(to_value(e));
      return Value{std::move(seq)};
    }
    case Node::Kind::kMap: {
      std::map<std::string, Value> m;
      for (const auto& [k, v] : node.as_map()) m.emplace(k, to_value(v));
      return Value{std::move(m)};
    }
  }
  throw ConfigError("unreachable node kind");
}

}  // namespace deisa::config
