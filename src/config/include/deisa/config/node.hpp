// Configuration tree: the document model produced by the mini-YAML
// parser and consumed by the PDI layer and the DEISA plugin.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace deisa::config {

class Node;

/// Ordered map — YAML mappings preserve key order.
using Map = std::vector<std::pair<std::string, Node>>;
using Seq = std::vector<Node>;

/// One node of a parsed configuration document.
class Node {
public:
  enum class Kind { kNull, kBool, kInt, kFloat, kString, kSeq, kMap };

  Node() : value_(std::monostate{}) {}
  Node(bool b) : value_(b) {}                          // NOLINT(runtime/explicit)
  Node(std::int64_t i) : value_(i) {}                  // NOLINT(runtime/explicit)
  Node(double d) : value_(d) {}                        // NOLINT(runtime/explicit)
  Node(std::string s) : value_(std::move(s)) {}        // NOLINT(runtime/explicit)
  Node(const char* s) : value_(std::string(s)) {}      // NOLINT(runtime/explicit)
  Node(Seq seq) : value_(std::move(seq)) {}            // NOLINT(runtime/explicit)
  Node(Map map) : value_(std::move(map)) {}            // NOLINT(runtime/explicit)

  Kind kind() const;
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_map() const { return kind() == Kind::kMap; }
  bool is_seq() const { return kind() == Kind::kSeq; }
  bool is_scalar() const;

  // Typed accessors; throw ConfigError on kind mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;
  /// Accepts both kInt and kFloat.
  double as_double() const;
  const std::string& as_string() const;
  const Seq& as_seq() const;
  const Map& as_map() const;

  /// Map lookup; throws ConfigError when missing.
  const Node& at(const std::string& key) const;
  /// Map lookup; returns nullptr when missing (or when not a map).
  const Node* find(const std::string& key) const;
  bool contains(const std::string& key) const { return find(key) != nullptr; }

  /// Sequence element access with bounds check.
  const Node& at(std::size_t index) const;
  std::size_t size() const;

  /// Scalar-with-default helpers for optional config keys.
  std::int64_t get_int(const std::string& key, std::int64_t dflt) const;
  double get_double(const std::string& key, double dflt) const;
  std::string get_string(const std::string& key, const std::string& dflt) const;
  bool get_bool(const std::string& key, bool dflt) const;

  /// Mutable map insertion (builders and tests).
  void set(const std::string& key, Node value);
  void push_back(Node value);

  /// Canonical flow-style rendering (debugging, golden tests).
  std::string to_string() const;

  bool operator==(const Node& other) const { return value_ == other.value_; }

private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string, Seq,
               Map>
      value_;
};

}  // namespace deisa::config
