// $-expression evaluator for configuration values, mirroring the PDI
// specification-tree expressions used in the paper's Listing 1, e.g.
//   '$cfg.loc[0] * ($rank % $cfg.proc[0])'
// Supported: integer/float literals, $references with .field and [index]
// access, unary minus, + - * / %, and parentheses.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "deisa/config/node.hpp"

namespace deisa::config {

/// Value domain of expression evaluation.
class Value {
public:
  Value() : v_(std::int64_t{0}) {}
  Value(std::int64_t i) : v_(i) {}                // NOLINT(runtime/explicit)
  Value(double d) : v_(d) {}                      // NOLINT(runtime/explicit)
  Value(std::string s) : v_(std::move(s)) {}      // NOLINT(runtime/explicit)
  Value(std::vector<Value> seq) : v_(std::move(seq)) {}  // NOLINT
  Value(std::map<std::string, Value> m) : v_(std::move(m)) {}  // NOLINT

  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_float() const { return std::holds_alternative<double>(v_); }
  bool is_number() const { return is_int() || is_float(); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_seq() const { return std::holds_alternative<std::vector<Value>>(v_); }
  bool is_map() const {
    return std::holds_alternative<std::map<std::string, Value>>(v_);
  }

  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;
  const std::vector<Value>& as_seq() const;
  const std::map<std::string, Value>& as_map() const;

  const Value& field(const std::string& name) const;
  const Value& index(std::int64_t i) const;

private:
  std::variant<std::int64_t, double, std::string, std::vector<Value>,
               std::map<std::string, Value>>
      v_;
};

/// Name → value environment for $references.
class Env {
public:
  void set(const std::string& name, Value v) { vars_[name] = std::move(v); }
  const Value& get(const std::string& name) const;
  bool contains(const std::string& name) const {
    return vars_.count(name) != 0;
  }

private:
  std::map<std::string, Value> vars_;
};

/// Evaluate an expression string against an environment.
/// A plain string without '$' and without operators evaluates to itself.
Value eval_expr(std::string_view expr, const Env& env);

/// Evaluate to an integer (throws ConfigError if the result is not a
/// number; floats are truncated toward zero as PDI does).
std::int64_t eval_int(std::string_view expr, const Env& env);

/// Evaluate a config Node that may be a literal or an expression string.
std::int64_t eval_node_int(const Node& node, const Env& env);

/// Convert a parsed config Node into an expression Value (maps/seqs
/// recurse; scalars map to the corresponding Value kind).
Value to_value(const Node& node);

}  // namespace deisa::config
