// Mini-YAML parser — the subset used by PDI-style specification trees
// (block maps and sequences by indentation, flow maps/seqs, quoted
// scalars, comments). Deliberately not a full YAML implementation: no
// anchors, tags, multi-documents, or block scalars.
#pragma once

#include <string>
#include <string_view>

#include "deisa/config/node.hpp"

namespace deisa::config {

/// Parse a YAML document from text; throws util::ConfigError with a line
/// number on malformed input.
Node parse_yaml(std::string_view text);

/// Parse a YAML document from a file.
Node parse_yaml_file(const std::string& path);

}  // namespace deisa::config
