#include "deisa/config/yaml.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <optional>
#include <sstream>

#include "deisa/util/error.hpp"
#include "deisa/util/strings.hpp"

namespace deisa::config {

using util::ConfigError;

namespace {

struct Line {
  int indent = 0;
  std::string content;  // without indentation or trailing comment
  std::size_t number = 0;
};

[[noreturn]] void fail(std::size_t line, const std::string& msg) {
  throw ConfigError("yaml line " + std::to_string(line) + ": " + msg);
}

/// Strip a trailing comment that is not inside quotes.
std::string strip_comment(std::string_view s) {
  bool in_single = false;
  bool in_double = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '\'' && !in_double) in_single = !in_single;
    else if (c == '"' && !in_single) in_double = !in_double;
    else if (c == '#' && !in_single && !in_double &&
             (i == 0 || s[i - 1] == ' ' || s[i - 1] == '\t'))
      return std::string(s.substr(0, i));
  }
  return std::string(s);
}

std::vector<Line> tokenize(std::string_view text) {
  std::vector<Line> lines;
  std::size_t number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view raw = text.substr(start, end - start);
    ++number;
    start = end + 1;
    if (end == text.size() && raw.empty() && start > text.size()) break;

    int indent = 0;
    while (static_cast<std::size_t>(indent) < raw.size() &&
           raw[static_cast<std::size_t>(indent)] == ' ')
      ++indent;
    if (static_cast<std::size_t>(indent) < raw.size() &&
        raw[static_cast<std::size_t>(indent)] == '\t')
      fail(number, "tabs are not allowed for indentation");
    std::string content =
        strip_comment(raw.substr(static_cast<std::size_t>(indent)));
    std::string_view trimmed = util::trim(content);
    if (trimmed.empty()) continue;
    lines.push_back(Line{indent, std::string(trimmed), number});
    if (end == text.size()) break;
  }
  return lines;
}

/// Parse a scalar token into the most specific Node kind.
Node parse_scalar(std::string_view tok) {
  std::string_view s = util::trim(tok);
  if (s.empty() || s == "~" || s == "null") return Node{};
  if (s == "true" || s == "True") return Node{true};
  if (s == "false" || s == "False") return Node{false};
  if ((s.front() == '\'' && s.back() == '\'' && s.size() >= 2) ||
      (s.front() == '"' && s.back() == '"' && s.size() >= 2))
    return Node{std::string(s.substr(1, s.size() - 2))};

  // Integer?
  {
    std::int64_t v = 0;
    const char* first = s.data();
    const char* last = s.data() + s.size();
    auto [ptr, ec] = std::from_chars(first, last, v);
    if (ec == std::errc() && ptr == last) return Node{v};
  }
  // Float?
  {
    double v = 0.0;
    const char* first = s.data();
    const char* last = s.data() + s.size();
    auto [ptr, ec] = std::from_chars(first, last, v);
    if (ec == std::errc() && ptr == last) return Node{v};
  }
  return Node{std::string(s)};
}

class FlowParser {
public:
  FlowParser(std::string_view s, std::size_t line) : s_(s), line_(line) {}

  Node parse() {
    Node n = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail(line_, "trailing characters in flow value");
    return n;
  }

private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t')) ++pos_;
  }

  char peek() { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  Node parse_value() {
    skip_ws();
    if (peek() == '{') return parse_map();
    if (peek() == '[') return parse_seq();
    return parse_scalar(read_scalar_token());
  }

  std::string read_scalar_token() {
    skip_ws();
    std::size_t start = pos_;
    if (peek() == '\'' || peek() == '"') {
      const char q = s_[pos_++];
      while (pos_ < s_.size() && s_[pos_] != q) ++pos_;
      if (pos_ == s_.size()) fail(line_, "unterminated quoted string");
      ++pos_;
      return std::string(s_.substr(start, pos_ - start));
    }
    while (pos_ < s_.size() && s_[pos_] != ',' && s_[pos_] != '}' &&
           s_[pos_] != ']' && s_[pos_] != ':')
      ++pos_;
    return std::string(util::trim(s_.substr(start, pos_ - start)));
  }

  Node parse_map() {
    ++pos_;  // '{'
    Map map;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Node{std::move(map)};
    }
    while (true) {
      const std::string key = read_scalar_token();
      skip_ws();
      if (peek() != ':') fail(line_, "expected ':' in flow map");
      ++pos_;
      Node value = parse_value();
      map.emplace_back(unquote(key), std::move(value));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return Node{std::move(map)};
      }
      fail(line_, "expected ',' or '}' in flow map");
    }
  }

  Node parse_seq() {
    ++pos_;  // '['
    Seq seq;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Node{std::move(seq)};
    }
    while (true) {
      seq.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return Node{std::move(seq)};
      }
      fail(line_, "expected ',' or ']' in flow sequence");
    }
  }

  static std::string unquote(std::string_view s) {
    s = util::trim(s);
    if (s.size() >= 2 && ((s.front() == '\'' && s.back() == '\'') ||
                          (s.front() == '"' && s.back() == '"')))
      return std::string(s.substr(1, s.size() - 2));
    return std::string(s);
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::size_t line_;
};

Node parse_flow_or_scalar(std::string_view s, std::size_t line) {
  std::string_view t = util::trim(s);
  if (!t.empty() && (t.front() == '{' || t.front() == '[')) {
    return FlowParser(t, line).parse();
  }
  return parse_scalar(t);
}

/// Split "key: value" at the first ':' that is outside quotes and not
/// inside a flow collection. Returns nullopt for non-mapping lines.
std::optional<std::pair<std::string, std::string>> split_key_value(
    std::string_view s) {
  bool in_single = false;
  bool in_double = false;
  int depth = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '\'' && !in_double) in_single = !in_single;
    else if (c == '"' && !in_single) in_double = !in_double;
    else if (in_single || in_double) continue;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    else if (c == ':' && depth == 0 &&
             (i + 1 == s.size() || s[i + 1] == ' ' || s[i + 1] == '\t')) {
      std::string key(util::trim(s.substr(0, i)));
      std::string value(util::trim(s.substr(i + 1)));
      if (key.size() >= 2 && ((key.front() == '\'' && key.back() == '\'') ||
                              (key.front() == '"' && key.back() == '"')))
        key = key.substr(1, key.size() - 2);
      return std::make_pair(std::move(key), std::move(value));
    }
  }
  return std::nullopt;
}

class BlockParser {
public:
  explicit BlockParser(std::vector<Line> lines) : lines_(std::move(lines)) {}

  Node parse() {
    if (lines_.empty()) return Node{};
    Node root = parse_block(lines_[0].indent);
    if (pos_ != lines_.size())
      fail(lines_[pos_].number, "unexpected dedent/indent structure");
    return root;
  }

private:
  const Line& cur() const { return lines_[pos_]; }
  bool done() const { return pos_ >= lines_.size(); }

  Node parse_block(int indent) {
    if (cur().content.front() == '-' &&
        (cur().content.size() == 1 || cur().content[1] == ' ' ||
         cur().content[1] == '\t'))
      return parse_seq_block(indent);
    return parse_map_block(indent);
  }

  Node parse_map_block(int indent) {
    Map map;
    while (!done() && cur().indent == indent) {
      const Line line = cur();
      auto kv = split_key_value(line.content);
      if (!kv) fail(line.number, "expected 'key: value' mapping");
      ++pos_;
      auto& [key, value] = *kv;
      if (!value.empty()) {
        map.emplace_back(key, parse_flow_or_scalar(value, line.number));
      } else if (!done() && cur().indent > indent) {
        map.emplace_back(key, parse_block(cur().indent));
      } else {
        map.emplace_back(key, Node{});
      }
    }
    if (!done() && cur().indent > indent)
      fail(cur().number, "unexpected indentation");
    return Node{std::move(map)};
  }

  Node parse_seq_block(int indent) {
    Seq seq;
    while (!done() && cur().indent == indent && cur().content.front() == '-') {
      const Line line = cur();
      std::string rest(util::trim(std::string_view(line.content).substr(1)));
      ++pos_;
      if (rest.empty()) {
        if (!done() && cur().indent > indent) {
          seq.push_back(parse_block(cur().indent));
        } else {
          seq.push_back(Node{});
        }
        continue;
      }
      // "- key: value" starts an inline map item that may continue on the
      // following, deeper-indented lines.
      auto kv = split_key_value(rest);
      if (kv && !rest.empty() && rest.front() != '{' && rest.front() != '[' &&
          rest.front() != '\'' && rest.front() != '"') {
        Map item;
        auto& [key, value] = *kv;
        if (!value.empty()) {
          item.emplace_back(key, parse_flow_or_scalar(value, line.number));
        } else if (!done() && cur().indent > indent + 2) {
          item.emplace_back(key, parse_block(cur().indent));
        } else {
          item.emplace_back(key, Node{});
        }
        // Continuation keys aligned two past the dash.
        const int item_indent = indent + 2;
        while (!done() && cur().indent == item_indent) {
          const Line more = cur();
          auto kv2 = split_key_value(more.content);
          if (!kv2) fail(more.number, "expected mapping in sequence item");
          ++pos_;
          auto& [k2, v2] = *kv2;
          if (!v2.empty()) {
            item.emplace_back(k2, parse_flow_or_scalar(v2, more.number));
          } else if (!done() && cur().indent > item_indent) {
            item.emplace_back(k2, parse_block(cur().indent));
          } else {
            item.emplace_back(k2, Node{});
          }
        }
        seq.push_back(Node{std::move(item)});
      } else {
        seq.push_back(parse_flow_or_scalar(rest, line.number));
      }
    }
    return Node{std::move(seq)};
  }

  std::vector<Line> lines_;
  std::size_t pos_ = 0;
};

}  // namespace

Node parse_yaml(std::string_view text) {
  return BlockParser(tokenize(text)).parse();
}

Node parse_yaml_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open yaml file: " + path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return parse_yaml(oss.str());
}

}  // namespace deisa::config
