#include "deisa/array/ndarray.hpp"

#include <numeric>

#include "deisa/util/error.hpp"

namespace deisa::array {

std::int64_t Box::volume() const {
  std::int64_t v = 1;
  for (std::size_t d = 0; d < lo.size(); ++d) v *= std::max<std::int64_t>(0, hi[d] - lo[d]);
  return v;
}

bool Box::contains(const Box& inner) const {
  DEISA_CHECK(lo.size() == inner.lo.size(), "box rank mismatch");
  for (std::size_t d = 0; d < lo.size(); ++d)
    if (inner.lo[d] < lo[d] || inner.hi[d] > hi[d]) return false;
  return true;
}

Box Box::intersect(const Box& other) const {
  DEISA_CHECK(lo.size() == other.lo.size(), "box rank mismatch");
  Box out;
  out.lo.resize(lo.size());
  out.hi.resize(lo.size());
  for (std::size_t d = 0; d < lo.size(); ++d) {
    out.lo[d] = std::max(lo[d], other.lo[d]);
    out.hi[d] = std::max(out.lo[d], std::min(hi[d], other.hi[d]));
  }
  return out;
}

NDArray::NDArray(Index shape, double fill) : shape_(std::move(shape)) {
  std::int64_t n = 1;
  strides_.resize(shape_.size());
  for (std::size_t d = shape_.size(); d-- > 0;) {
    DEISA_CHECK(shape_[d] >= 0, "negative dimension in NDArray shape");
    strides_[d] = n;
    n *= shape_[d];
  }
  data_.assign(static_cast<std::size_t>(n), fill);
}

std::int64_t NDArray::offset_of(std::span<const std::int64_t> idx) const {
  DEISA_CHECK(idx.size() == shape_.size(), "index rank mismatch");
  std::int64_t off = 0;
  for (std::size_t d = 0; d < idx.size(); ++d) {
    DEISA_CHECK(idx[d] >= 0 && idx[d] < shape_[d],
                "index " << idx[d] << " out of range in dim " << d);
    off += idx[d] * strides_[d];
  }
  return off;
}

double& NDArray::at(std::span<const std::int64_t> idx) {
  return data_[static_cast<std::size_t>(offset_of(idx))];
}

double NDArray::at(std::span<const std::int64_t> idx) const {
  return data_[static_cast<std::size_t>(offset_of(idx))];
}

namespace {

/// Strided n-d copy: move `extents`-shaped data from `src` (strides
/// `sstr`) to `dst` (strides `dstr`). Trailing dimensions where both
/// sides are unit-stride-contiguous are coalesced into one run copied
/// with std::copy; the innermost remaining dimension runs as a tight
/// two-pointer loop; outer dimensions advance by an incremental
/// odometer. All three NDArray bulk kernels (extract/insert/reshape_2d)
/// reduce to this, so the bounds are validated once by the caller and
/// never per element.
void copy_strided(const double* src, double* dst, const Index& extents,
                  const Index& sstr, const Index& dstr) {
  std::size_t nd = extents.size();
  for (std::int64_t e : extents)
    if (e == 0) return;
  // Coalesce trailing contiguous dims (both sides) into one run.
  std::int64_t run = 1;
  while (nd > 0 && sstr[nd - 1] == run && dstr[nd - 1] == run) {
    run *= extents[nd - 1];
    --nd;
  }
  if (nd == 0) {
    std::copy(src, src + run, dst);
    return;
  }
  const std::int64_t inner_n = extents[nd - 1];
  const std::int64_t inner_s = sstr[nd - 1];
  const std::int64_t inner_d = dstr[nd - 1];
  Index idx(nd, 0);  // odometer over dims [0, nd-1); idx[nd-1] unused
  const double* s = src;
  double* d = dst;
  while (true) {
    if (run == 1) {
      const double* sp = s;
      double* dp = d;
      for (std::int64_t i = 0; i < inner_n; ++i) {
        *dp = *sp;
        sp += inner_s;
        dp += inner_d;
      }
    } else {
      const double* sp = s;
      double* dp = d;
      for (std::int64_t i = 0; i < inner_n; ++i) {
        std::copy(sp, sp + run, dp);
        sp += inner_s;
        dp += inner_d;
      }
    }
    if (nd == 1) return;
    std::size_t k = nd - 1;
    while (k-- > 0) {
      s += sstr[k];
      d += dstr[k];
      if (++idx[k] < extents[k]) break;
      s -= sstr[k] * extents[k];
      d -= dstr[k] * extents[k];
      idx[k] = 0;
      if (k == 0) return;
    }
  }
}

}  // namespace

NDArray NDArray::extract(const Box& box) const {
  DEISA_CHECK(box.ndim() == ndim(), "extract box rank mismatch");
  Index out_shape(ndim());
  std::int64_t src_off = 0;
  for (std::size_t d = 0; d < ndim(); ++d) {
    DEISA_CHECK(box.lo[d] >= 0 && box.hi[d] <= shape_[d],
                "extract box out of range in dim " << d);
    out_shape[d] = box.extent(d);
    src_off += box.lo[d] * strides_[d];
  }
  NDArray out(out_shape);
  if (out.data_.empty()) return out;
  copy_strided(data_.data() + src_off, out.data_.data(), out_shape, strides_,
               out.strides_);
  return out;
}

void NDArray::insert(const Box& box, const NDArray& src) {
  DEISA_CHECK(box.ndim() == ndim(), "insert box rank mismatch");
  std::int64_t dst_off = 0;
  for (std::size_t d = 0; d < ndim(); ++d) {
    DEISA_CHECK(box.extent(d) == src.shape()[d],
                "insert shape mismatch in dim " << d);
    DEISA_CHECK(box.lo[d] >= 0 && box.hi[d] <= shape_[d],
                "insert box out of range in dim " << d);
    dst_off += box.lo[d] * strides_[d];
  }
  if (src.data_.empty()) return;
  copy_strided(src.data_.data(), data_.data() + dst_off, src.shape_,
               src.strides_, strides_);
}

NDArray NDArray::reshape_2d(const std::vector<std::size_t>& row_dims) const {
  std::vector<bool> is_row(ndim(), false);
  for (std::size_t d : row_dims) {
    DEISA_CHECK(d < ndim(), "row dim out of range");
    is_row[d] = true;
  }
  std::vector<std::size_t> col_dims;
  for (std::size_t d = 0; d < ndim(); ++d)
    if (!is_row[d]) col_dims.push_back(d);

  std::int64_t nrows = 1;
  for (std::size_t d : row_dims) nrows *= shape_[d];
  std::int64_t ncols = 1;
  for (std::size_t d : col_dims) ncols *= shape_[d];

  NDArray out(Index{nrows, ncols});
  if (out.data_.empty()) return out;
  // Per-input-dim stride into the flat 2D output: row dims step by the
  // remaining row extents times ncols, col dims by the remaining col
  // extents. The input side is the full array (contiguous strides_), so
  // the copy degenerates to a memcpy whenever row_dims is an in-order
  // prefix of the dims and to long runs otherwise.
  Index out_strides(ndim(), 0);
  std::int64_t rs = ncols;
  for (std::size_t i = row_dims.size(); i-- > 0;) {
    out_strides[row_dims[i]] = rs;
    rs *= shape_[row_dims[i]];
  }
  std::int64_t cs = 1;
  for (std::size_t i = col_dims.size(); i-- > 0;) {
    out_strides[col_dims[i]] = cs;
    cs *= shape_[col_dims[i]];
  }
  copy_strided(data_.data(), out.data_.data(), shape_, strides_, out_strides);
  return out;
}

}  // namespace deisa::array
