#include "deisa/array/ndarray.hpp"

#include <numeric>

#include "deisa/util/error.hpp"

namespace deisa::array {

std::int64_t Box::volume() const {
  std::int64_t v = 1;
  for (std::size_t d = 0; d < lo.size(); ++d) v *= std::max<std::int64_t>(0, hi[d] - lo[d]);
  return v;
}

bool Box::contains(const Box& inner) const {
  DEISA_CHECK(lo.size() == inner.lo.size(), "box rank mismatch");
  for (std::size_t d = 0; d < lo.size(); ++d)
    if (inner.lo[d] < lo[d] || inner.hi[d] > hi[d]) return false;
  return true;
}

Box Box::intersect(const Box& other) const {
  DEISA_CHECK(lo.size() == other.lo.size(), "box rank mismatch");
  Box out;
  out.lo.resize(lo.size());
  out.hi.resize(lo.size());
  for (std::size_t d = 0; d < lo.size(); ++d) {
    out.lo[d] = std::max(lo[d], other.lo[d]);
    out.hi[d] = std::max(out.lo[d], std::min(hi[d], other.hi[d]));
  }
  return out;
}

NDArray::NDArray(Index shape, double fill) : shape_(std::move(shape)) {
  std::int64_t n = 1;
  strides_.resize(shape_.size());
  for (std::size_t d = shape_.size(); d-- > 0;) {
    DEISA_CHECK(shape_[d] >= 0, "negative dimension in NDArray shape");
    strides_[d] = n;
    n *= shape_[d];
  }
  data_.assign(static_cast<std::size_t>(n), fill);
}

std::int64_t NDArray::offset_of(std::span<const std::int64_t> idx) const {
  DEISA_CHECK(idx.size() == shape_.size(), "index rank mismatch");
  std::int64_t off = 0;
  for (std::size_t d = 0; d < idx.size(); ++d) {
    DEISA_CHECK(idx[d] >= 0 && idx[d] < shape_[d],
                "index " << idx[d] << " out of range in dim " << d);
    off += idx[d] * strides_[d];
  }
  return off;
}

double& NDArray::at(std::span<const std::int64_t> idx) {
  return data_[static_cast<std::size_t>(offset_of(idx))];
}

double NDArray::at(std::span<const std::int64_t> idx) const {
  return data_[static_cast<std::size_t>(offset_of(idx))];
}

namespace {
/// Iterate all indices of a box, calling fn(local_index_in_box).
template <typename Fn>
void for_each_index(const Box& box, Fn&& fn) {
  const std::size_t nd = box.ndim();
  if (box.volume() == 0) return;
  Index idx = box.lo;
  while (true) {
    fn(idx);
    std::size_t d = nd;
    while (d-- > 0) {
      if (++idx[d] < box.hi[d]) break;
      idx[d] = box.lo[d];
      if (d == 0) return;
    }
    if (nd == 0) return;
  }
}
}  // namespace

NDArray NDArray::extract(const Box& box) const {
  DEISA_CHECK(box.ndim() == ndim(), "extract box rank mismatch");
  Index out_shape(ndim());
  for (std::size_t d = 0; d < ndim(); ++d) {
    DEISA_CHECK(box.lo[d] >= 0 && box.hi[d] <= shape_[d],
                "extract box out of range in dim " << d);
    out_shape[d] = box.extent(d);
  }
  NDArray out(out_shape);
  Index local(ndim());
  for_each_index(box, [&](const Index& idx) {
    for (std::size_t d = 0; d < idx.size(); ++d) local[d] = idx[d] - box.lo[d];
    out.at(local) = at(idx);
  });
  return out;
}

void NDArray::insert(const Box& box, const NDArray& src) {
  DEISA_CHECK(box.ndim() == ndim(), "insert box rank mismatch");
  for (std::size_t d = 0; d < ndim(); ++d) {
    DEISA_CHECK(box.extent(d) == src.shape()[d],
                "insert shape mismatch in dim " << d);
    DEISA_CHECK(box.lo[d] >= 0 && box.hi[d] <= shape_[d],
                "insert box out of range in dim " << d);
  }
  Index local(ndim());
  for_each_index(box, [&](const Index& idx) {
    for (std::size_t d = 0; d < idx.size(); ++d) local[d] = idx[d] - box.lo[d];
    at(idx) = src.at(local);
  });
}

NDArray NDArray::reshape_2d(const std::vector<std::size_t>& row_dims) const {
  std::vector<bool> is_row(ndim(), false);
  for (std::size_t d : row_dims) {
    DEISA_CHECK(d < ndim(), "row dim out of range");
    is_row[d] = true;
  }
  std::vector<std::size_t> col_dims;
  for (std::size_t d = 0; d < ndim(); ++d)
    if (!is_row[d]) col_dims.push_back(d);

  std::int64_t nrows = 1;
  for (std::size_t d : row_dims) nrows *= shape_[d];
  std::int64_t ncols = 1;
  for (std::size_t d : col_dims) ncols *= shape_[d];

  NDArray out(Index{nrows, ncols});
  Box all;
  all.lo.assign(ndim(), 0);
  all.hi = shape_;
  for_each_index(all, [&](const Index& idx) {
    std::int64_t r = 0;
    for (std::size_t d : row_dims) r = r * shape_[d] + idx[d];
    std::int64_t c = 0;
    for (std::size_t d : col_dims) c = c * shape_[d] + idx[d];
    const Index rc{r, c};
    out.at(rc) = at(idx);
  });
  return out;
}

}  // namespace deisa::array
