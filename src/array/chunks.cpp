#include "deisa/array/chunks.hpp"

#include <charconv>

#include "deisa/util/error.hpp"
#include "deisa/util/strings.hpp"

namespace deisa::array {

ChunkGrid::ChunkGrid(Index shape, Index chunk_shape)
    : shape_(std::move(shape)), chunk_(std::move(chunk_shape)) {
  DEISA_CHECK(shape_.size() == chunk_.size(),
              "shape and chunk rank mismatch: " << shape_.size() << " vs "
                                                << chunk_.size());
  for (std::size_t d = 0; d < shape_.size(); ++d) {
    DEISA_CHECK(shape_[d] > 0, "dimension " << d << " must be positive");
    DEISA_CHECK(chunk_[d] > 0 && chunk_[d] <= shape_[d],
                "chunk size in dim " << d << " must be in [1, " << shape_[d]
                                     << "], got " << chunk_[d]);
  }
}

std::int64_t ChunkGrid::chunks_in(std::size_t d) const {
  return (shape_[d] + chunk_[d] - 1) / chunk_[d];
}

std::int64_t ChunkGrid::num_chunks() const {
  std::int64_t n = 1;
  for (std::size_t d = 0; d < shape_.size(); ++d) n *= chunks_in(d);
  return n;
}

Box ChunkGrid::box_of(const Index& c) const {
  DEISA_CHECK(c.size() == ndim(), "chunk coordinate rank mismatch");
  Box box;
  box.lo.resize(ndim());
  box.hi.resize(ndim());
  for (std::size_t d = 0; d < ndim(); ++d) {
    DEISA_CHECK(c[d] >= 0 && c[d] < chunks_in(d),
                "chunk coordinate " << c[d] << " out of range in dim " << d);
    box.lo[d] = c[d] * chunk_[d];
    box.hi[d] = std::min(shape_[d], box.lo[d] + chunk_[d]);
  }
  return box;
}

Index ChunkGrid::coord_of(std::int64_t linear) const {
  DEISA_CHECK(linear >= 0 && linear < num_chunks(),
              "linear chunk index out of range: " << linear);
  Index c(ndim());
  for (std::size_t d = ndim(); d-- > 0;) {
    const std::int64_t n = chunks_in(d);
    c[d] = linear % n;
    linear /= n;
  }
  return c;
}

std::int64_t ChunkGrid::linear_of(const Index& c) const {
  DEISA_CHECK(c.size() == ndim(), "chunk coordinate rank mismatch");
  std::int64_t linear = 0;
  for (std::size_t d = 0; d < ndim(); ++d) {
    DEISA_CHECK(c[d] >= 0 && c[d] < chunks_in(d),
                "chunk coordinate out of range in dim " << d);
    linear = linear * chunks_in(d) + c[d];
  }
  return linear;
}

std::vector<Index> ChunkGrid::chunks_overlapping(const Box& box) const {
  DEISA_CHECK(box.ndim() == ndim(), "box rank mismatch");
  Index lo(ndim());
  Index hi(ndim());
  for (std::size_t d = 0; d < ndim(); ++d) {
    const std::int64_t b_lo = std::max<std::int64_t>(0, box.lo[d]);
    const std::int64_t b_hi = std::min(shape_[d], box.hi[d]);
    if (b_lo >= b_hi) return {};
    lo[d] = b_lo / chunk_[d];
    hi[d] = (b_hi - 1) / chunk_[d] + 1;
  }
  std::vector<Index> out;
  Index c = lo;
  while (true) {
    out.push_back(c);
    std::size_t d = ndim();
    bool done = true;
    while (d-- > 0) {
      if (++c[d] < hi[d]) {
        done = false;
        break;
      }
      c[d] = lo[d];
      if (d == 0) break;
    }
    if (done) break;
  }
  return out;
}

std::string chunk_key(const std::string& prefix, const std::string& name,
                      const Index& coord) {
  ChunkKeyBuilder builder(prefix, name);
  return builder.render(coord);
}

ChunkKeyBuilder::ChunkKeyBuilder(std::string_view prefix,
                                 std::string_view name) {
  buf_.reserve(prefix.size() + name.size() + 1 + 24);
  buf_.append(prefix);
  buf_.append(name);
  buf_.push_back('|');
  stem_ = buf_.size();
}

const std::string& ChunkKeyBuilder::render(const Index& coord) {
  buf_.resize(stem_);
  char digits[24];
  for (std::size_t d = 0; d < coord.size(); ++d) {
    if (d > 0) buf_.push_back(',');
    const auto [end, ec] =
        std::to_chars(digits, digits + sizeof digits, coord[d]);
    DEISA_ASSERT(ec == std::errc(), "coordinate render failed");
    buf_.append(digits, end);
  }
  return buf_;
}

std::pair<std::string, Index> parse_chunk_key(const std::string& prefix,
                                              const std::string& key) {
  DEISA_CHECK(util::starts_with(key, prefix),
              "key '" << key << "' lacks prefix '" << prefix << "'");
  const std::string rest = key.substr(prefix.size());
  const std::size_t bar = rest.find('|');
  DEISA_CHECK(bar != std::string::npos, "malformed chunk key: " << key);
  const std::string name = rest.substr(0, bar);
  Index coord;
  for (const std::string& tok : util::split(rest.substr(bar + 1), ',')) {
    std::int64_t v = 0;
    const auto [p, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), v);
    DEISA_CHECK(ec == std::errc() && p == tok.data() + tok.size(),
                "malformed chunk coordinate in key: " << key);
    coord.push_back(v);
  }
  return {name, coord};
}

Selection Selection::all(const Index& shape) {
  Box box;
  box.lo.assign(shape.size(), 0);
  box.hi = shape;
  return Selection(std::move(box));
}

bool Selection::includes_chunk(const ChunkGrid& grid,
                               const Index& coord) const {
  return !grid.box_of(coord).intersect(box).empty();
}

}  // namespace deisa::array
