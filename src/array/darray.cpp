#include "deisa/array/darray.hpp"

namespace deisa::array {

int preselected_worker(std::int64_t linear, int num_workers) {
  DEISA_CHECK(num_workers > 0, "no workers available for placement");
  return static_cast<int>(linear % num_workers);
}

DArray::DArray(dts::Client& client, std::string name, ChunkGrid grid)
    : client_(&client), name_(std::move(name)), grid_(std::move(grid)) {}

void DArray::build_keys(const std::string& prefix) {
  const std::int64_t n = grid_.num_chunks();
  keys_.reserve(static_cast<std::size_t>(n));
  workers_.reserve(static_cast<std::size_t>(n));
  // One stem render for the whole array; per chunk only the coordinate
  // digits are appended and the finished key copied into place.
  ChunkKeyBuilder builder(prefix, name_);
  const int num_workers = client_->num_workers();
  for (std::int64_t i = 0; i < n; ++i) {
    keys_.push_back(builder.render(grid_.coord_of(i)));
    workers_.push_back(preselected_worker(i, num_workers));
  }
}

const dts::Key& DArray::key_of(const Index& c) const {
  return keys_[static_cast<std::size_t>(grid_.linear_of(c))];
}

int DArray::worker_of(const Index& c) const {
  return workers_[static_cast<std::size_t>(grid_.linear_of(c))];
}

DArray DArray::descriptor(dts::Client& client, std::string name, Index shape,
                          Index chunk_shape) {
  DArray a(client, std::move(name),
           ChunkGrid(std::move(shape), std::move(chunk_shape)));
  a.build_keys(kDeisaPrefix);
  return a;
}

exec::Co<DArray> DArray::from_external(dts::Client& client, std::string name,
                                      Index shape, Index chunk_shape) {
  DArray a = descriptor(client, std::move(name), std::move(shape),
                        std::move(chunk_shape));
  co_await client.external_futures(a.keys_, a.workers_);
  co_return a;
}

exec::Co<DArray> DArray::map_chunks(
    const DArray& src, std::string name,
    std::function<dts::Data(const dts::Data&)> fn, double cost_per_chunk,
    std::uint64_t out_bytes_per_chunk) {
  DArray out(*src.client_, name, src.grid_);
  out.build_keys("");
  std::vector<dts::TaskSpec> tasks;
  const std::int64_t n = src.grid_.num_chunks();
  for (std::int64_t i = 0; i < n; ++i) {
    const std::size_t si = static_cast<std::size_t>(i);
    dts::TaskFn task_fn;
    if (fn)
      task_fn = [fn](const std::vector<dts::Data>& in) { return fn(in[0]); };
    tasks.emplace_back(out.keys_[si], std::vector<dts::Key>{src.keys_[si]},
                       std::move(task_fn), cost_per_chunk,
                       out_bytes_per_chunk);
  }
  co_await src.client_->submit(std::move(tasks), out.keys_);
  co_return out;
}

exec::Co<DArray> DArray::rechunk(Index new_chunk_shape,
                                std::string name) const {
  DArray out(*client_, std::move(name),
             ChunkGrid(grid_.shape(), std::move(new_chunk_shape)));
  out.build_keys("");
  const ChunkGrid src_grid = grid_;
  const ChunkGrid dst_grid = out.grid_;

  std::vector<dts::TaskSpec> tasks;
  const std::int64_t n = dst_grid.num_chunks();
  for (std::int64_t i = 0; i < n; ++i) {
    const Index dst_coord = dst_grid.coord_of(i);
    const Box dst_box = dst_grid.box_of(dst_coord);
    const std::vector<Index> srcs = src_grid.chunks_overlapping(dst_box);
    std::vector<dts::Key> deps;
    std::vector<Box> src_boxes;
    deps.reserve(srcs.size());
    for (const Index& sc : srcs) {
      deps.push_back(key_of(sc));
      src_boxes.push_back(src_grid.box_of(sc));
    }
    // Assemble the destination box from the overlapping source chunks.
    dts::TaskFn fn = [dst_box, src_boxes](const std::vector<dts::Data>& in) {
      NDArray dst(
          [&] {
            Index s(dst_box.ndim());
            for (std::size_t d = 0; d < s.size(); ++d)
              s[d] = dst_box.extent(d);
            return s;
          }());
      bool any_value = false;
      for (std::size_t j = 0; j < in.size(); ++j) {
        if (!in[j].has_value()) continue;
        any_value = true;
        const auto& src = in[j].as<NDArray>();
        const Box overlap = dst_box.intersect(src_boxes[j]);
        // Source-local coordinates of the overlap.
        Box src_local;
        Box dst_local;
        src_local.lo.resize(overlap.ndim());
        src_local.hi.resize(overlap.ndim());
        dst_local.lo.resize(overlap.ndim());
        dst_local.hi.resize(overlap.ndim());
        for (std::size_t d = 0; d < overlap.ndim(); ++d) {
          src_local.lo[d] = overlap.lo[d] - src_boxes[j].lo[d];
          src_local.hi[d] = overlap.hi[d] - src_boxes[j].lo[d];
          dst_local.lo[d] = overlap.lo[d] - dst_box.lo[d];
          dst_local.hi[d] = overlap.hi[d] - dst_box.lo[d];
        }
        dst.insert(dst_local, src.extract(src_local));
      }
      if (!any_value) {
        // Synthetic inputs: forward size only.
        std::uint64_t b = static_cast<std::uint64_t>(dst.size()) *
                          sizeof(double);
        return dts::Data::sized(b);
      }
      const std::uint64_t b = dst.bytes();
      return dts::Data::make<NDArray>(std::move(dst), b);
    };
    const std::uint64_t out_bytes =
        static_cast<std::uint64_t>(dst_box.volume()) * sizeof(double);
    tasks.emplace_back(out.keys_[static_cast<std::size_t>(i)],
                       std::move(deps), std::move(fn), 0.0, out_bytes);
  }
  co_await client_->submit(std::move(tasks), out.keys_);
  co_return out;
}

exec::Co<NDArray> DArray::gather_box(const Selection& sel) const {
  Index out_shape(sel.box.ndim());
  for (std::size_t d = 0; d < out_shape.size(); ++d)
    out_shape[d] = sel.box.extent(d);
  NDArray out(out_shape);
  const std::vector<Index> coords = grid_.chunks_overlapping(sel.box);
  for (const Index& c : coords) {
    const dts::Data d = co_await client_->gather(key_of(c));
    const NDArray& chunk = d.as<NDArray>();
    const Box cbox = grid_.box_of(c);
    const Box overlap = cbox.intersect(sel.box);
    Box src_local;
    Box dst_local;
    src_local.lo.resize(overlap.ndim());
    src_local.hi.resize(overlap.ndim());
    dst_local.lo.resize(overlap.ndim());
    dst_local.hi.resize(overlap.ndim());
    for (std::size_t d2 = 0; d2 < overlap.ndim(); ++d2) {
      src_local.lo[d2] = overlap.lo[d2] - cbox.lo[d2];
      src_local.hi[d2] = overlap.hi[d2] - cbox.lo[d2];
      dst_local.lo[d2] = overlap.lo[d2] - sel.box.lo[d2];
      dst_local.hi[d2] = overlap.hi[d2] - sel.box.lo[d2];
    }
    out.insert(dst_local, chunk.extract(src_local));
  }
  co_return out;
}

}  // namespace deisa::array
