// Chunk geometry of a distributed array: a regular grid decomposition of
// an n-d index space, identical on the simulation side (one block per MPI
// rank per timestep) and the analytics side (one task/chunk per block),
// plus the naming scheme mapping chunk coordinates to task keys (§2.4.1).
#pragma once

#include <string>
#include <string_view>

#include "deisa/array/ndarray.hpp"

namespace deisa::array {

/// Regular chunking of an n-d shape. Every dimension d is split into
/// ceil(shape[d]/chunk[d]) chunks; the last chunk of a dimension may be
/// smaller.
class ChunkGrid {
public:
  ChunkGrid() = default;
  ChunkGrid(Index shape, Index chunk_shape);

  const Index& shape() const { return shape_; }
  const Index& chunk_shape() const { return chunk_; }
  std::size_t ndim() const { return shape_.size(); }

  /// Number of chunks along dimension d.
  std::int64_t chunks_in(std::size_t d) const;
  /// Total number of chunks.
  std::int64_t num_chunks() const;

  /// Bounding box (global coordinates) of the chunk at grid coordinate c.
  Box box_of(const Index& c) const;
  /// Grid coordinate of chunk number `linear` (row-major over the grid).
  Index coord_of(std::int64_t linear) const;
  std::int64_t linear_of(const Index& c) const;

  /// Grid coordinates of every chunk intersecting `box` (row-major order).
  std::vector<Index> chunks_overlapping(const Box& box) const;

  bool operator==(const ChunkGrid& other) const = default;

private:
  Index shape_;
  Index chunk_;
};

/// Naming scheme of §2.4.1: (prefix-name, (t, i, j)) rendered as a single
/// string key, e.g. "deisa-temp|3,1,5".
std::string chunk_key(const std::string& prefix, const std::string& name,
                      const Index& coord);

/// Renders chunk keys that share one (prefix, name) stem into a reused
/// buffer: the "prefix+name|" part is concatenated once at construction
/// and render() appends the coordinates with to_chars, so per-key cost is
/// a few digit writes instead of a string allocation per component. The
/// returned reference is valid until the next render(); callers copy it
/// only where an owning Key is needed (e.g. into a message).
class ChunkKeyBuilder {
public:
  ChunkKeyBuilder() = default;
  ChunkKeyBuilder(std::string_view prefix, std::string_view name);

  const std::string& render(const Index& coord);

private:
  std::string buf_;
  std::size_t stem_ = 0;
};

/// Parse a chunk key back into (name, coord); throws on malformed keys.
std::pair<std::string, Index> parse_chunk_key(const std::string& prefix,
                                              const std::string& key);

/// A rectangular selection (contract filter): per-dimension [start, stop).
struct Selection {
  Selection() = default;
  explicit Selection(Box box_) : box(std::move(box_)) {}
  Box box;

  /// Full-array selection (the `[...]` of Listing 2).
  static Selection all(const Index& shape);
  bool includes_chunk(const ChunkGrid& grid, const Index& coord) const;
};

}  // namespace deisa::array
