// Local dense n-dimensional double array (row-major) — the in-memory
// payload of one chunk of a distributed array.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace deisa::array {

using Index = std::vector<std::int64_t>;

/// Half-open axis-aligned box [lo, hi) in n-d index space.
struct Box {
  Box() = default;
  Box(Index lo_, Index hi_) : lo(std::move(lo_)), hi(std::move(hi_)) {}
  Index lo;
  Index hi;

  std::size_t ndim() const { return lo.size(); }
  std::int64_t extent(std::size_t d) const { return hi[d] - lo[d]; }
  std::int64_t volume() const;
  bool empty() const { return volume() == 0; }
  bool contains(const Box& inner) const;
  /// Intersection (possibly empty).
  Box intersect(const Box& other) const;
  bool operator==(const Box& other) const = default;
};

class NDArray {
public:
  NDArray() = default;
  explicit NDArray(Index shape, double fill = 0.0);

  const Index& shape() const { return shape_; }
  std::size_t ndim() const { return shape_.size(); }
  std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }
  std::uint64_t bytes() const { return data_.size() * sizeof(double); }

  double& at(std::span<const std::int64_t> idx);
  double at(std::span<const std::int64_t> idx) const;

  std::span<double> flat() { return data_; }
  std::span<const double> flat() const { return data_; }

  /// Raw contiguous storage (row-major), for kernels that stream whole
  /// rows/planes without per-element index arithmetic.
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  /// Row-major strides, one per dimension (innermost is 1).
  const Index& strides() const { return strides_; }

  /// Copy out the sub-box (box given in this array's local coordinates).
  NDArray extract(const Box& box) const;
  /// Write `src` into the sub-box (shapes must match).
  void insert(const Box& box, const NDArray& src);

  /// Collapse to 2D: dims listed in `row_dims` become rows (in order),
  /// remaining dims (in order) become columns. Used to stack sample and
  /// feature dimensions for the multidimensional IPCA (paper §3.2).
  NDArray reshape_2d(const std::vector<std::size_t>& row_dims) const;

  bool same_shape(const NDArray& other) const {
    return shape_ == other.shape_;
  }

private:
  std::int64_t offset_of(std::span<const std::int64_t> idx) const;

  Index shape_;
  std::vector<std::int64_t> strides_;  // row-major
  std::vector<double> data_;
};

}  // namespace deisa::array
