// Distributed chunked array over the task system — the C++ analogue of a
// dask.array backed (optionally) by external tasks.
#pragma once

#include <functional>
#include <string>

#include "deisa/array/chunks.hpp"
#include "deisa/dts/client.hpp"

namespace deisa::array {

/// Default key prefix of the deisa naming scheme (§2.4.1).
inline constexpr const char* kDeisaPrefix = "deisa-";

/// A chunked distributed array: chunk grid + one task key per chunk.
/// DArray itself is a lightweight descriptor; data lives on workers.
class DArray {
public:
  DArray() = default;

  const std::string& name() const { return name_; }
  const ChunkGrid& grid() const { return grid_; }
  const Index& shape() const { return grid_.shape(); }
  dts::Client& client() const { return *client_; }

  /// Key of the chunk at grid coordinate c.
  const dts::Key& key_of(const Index& c) const;
  /// All chunk keys in row-major grid order.
  const std::vector<dts::Key>& keys() const { return keys_; }
  /// Worker that holds / will hold the chunk at c (as assigned at
  /// creation; -1 when the scheduler decides).
  int worker_of(const Index& c) const;

  /// Build an array whose chunks are **external tasks**: one per chunk,
  /// named by the deisa scheme and pinned round-robin onto workers. The
  /// whole multi-timestep analytics graph can then be submitted before
  /// any simulation data exists (paper §2.2/§2.4.2).
  static exec::Co<DArray> from_external(dts::Client& client, std::string name,
                                       Index shape, Index chunk_shape);

  /// Descriptor-only variant: same keys/placement, but does NOT contact
  /// the scheduler (used by bridges, which must agree on the naming and
  /// placement without creating tasks).
  static DArray descriptor(dts::Client& client, std::string name, Index shape,
                           Index chunk_shape);

  /// Build a derived array by mapping a function over every chunk of
  /// `src` (one task per chunk, same grid). Submits the graph.
  static exec::Co<DArray> map_chunks(
      const DArray& src, std::string name,
      std::function<dts::Data(const dts::Data&)> fn, double cost_per_chunk,
      std::uint64_t out_bytes_per_chunk);

  /// Rechunk into a new chunk shape: each target chunk depends on the
  /// overlapping source chunks and assembles its box from them (real
  /// payloads are NDArrays; synthetic payloads carry sizes only).
  exec::Co<DArray> rechunk(Index new_chunk_shape, std::string name) const;

  /// Gather the chunks overlapping `sel` and assemble the sub-array
  /// covering sel.box (functional mode only).
  exec::Co<NDArray> gather_box(const Selection& sel) const;

  /// Chunks overlapping a selection (contract support).
  std::vector<Index> chunks_in(const Selection& sel) const {
    return grid_.chunks_overlapping(sel.box);
  }

private:
  DArray(dts::Client& client, std::string name, ChunkGrid grid);
  void build_keys(const std::string& prefix);

  dts::Client* client_ = nullptr;
  std::string name_;
  ChunkGrid grid_;
  std::vector<dts::Key> keys_;     // row-major grid order
  std::vector<int> workers_;       // placement per chunk (-1 = scheduler)
};

/// Round-robin placement of chunk `linear` over `num_workers` workers —
/// the "preselected worker" rule shared by adaptor and bridges.
int preselected_worker(std::int64_t linear, int num_workers);

}  // namespace deisa::array
