#include "deisa/fault/fault.hpp"

#include <sstream>

#include "deisa/dts/runtime.hpp"
#include "deisa/obs/metrics.hpp"
#include "deisa/obs/trace.hpp"
#include "deisa/util/log.hpp"

namespace deisa::fault {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

double parse_double(const std::string& s, const std::string& what) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(s, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  DEISA_CHECK(pos == s.size() && !s.empty(),
              "fault spec: bad " << what << " value '" << s << "'");
  return v;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& part : split(spec, ';')) {
    if (part.empty()) continue;
    const auto colon = part.find(':');
    DEISA_CHECK(colon != std::string::npos,
                "fault spec: expected '<kind>:<value>', got '" << part << "'");
    const std::string kind = part.substr(0, colon);
    const std::string value = part.substr(colon + 1);
    if (kind == "kill") {
      // kill:<worker>@<time>
      const auto at = value.find('@');
      DEISA_CHECK(at != std::string::npos,
                  "fault spec: kill needs '<worker>@<time>', got '" << value
                                                                    << "'");
      const int worker = static_cast<int>(
          parse_double(value.substr(0, at), "kill worker"));
      const double time = parse_double(value.substr(at + 1), "kill time");
      DEISA_CHECK(worker >= 0 && time >= 0.0,
                  "fault spec: kill worker/time must be non-negative");
      plan.kills.emplace_back(worker, time);
    } else if (kind == "drop") {
      plan.drop_prob = parse_double(value, "drop probability");
    } else if (kind == "dup") {
      plan.dup_prob = parse_double(value, "dup probability");
    } else if (kind == "delay") {
      // delay:<prob>@<seconds>
      const auto at = value.find('@');
      DEISA_CHECK(at != std::string::npos,
                  "fault spec: delay needs '<prob>@<seconds>', got '" << value
                                                                     << "'");
      plan.delay_prob = parse_double(value.substr(0, at), "delay probability");
      plan.delay_seconds =
          parse_double(value.substr(at + 1), "delay seconds");
    } else if (kind == "seed") {
      plan.seed = static_cast<std::uint64_t>(
          parse_double(value, "seed"));
    } else {
      DEISA_CHECK(false, "fault spec: unknown fault kind '" << kind << "'");
    }
  }
  DEISA_CHECK(plan.drop_prob >= 0.0 && plan.drop_prob <= 1.0 &&
                  plan.dup_prob >= 0.0 && plan.dup_prob <= 1.0 &&
                  plan.delay_prob >= 0.0 && plan.delay_prob <= 1.0,
              "fault spec: probabilities must be in [0, 1]");
  return plan;
}

std::string FaultPlan::describe() const {
  if (empty()) return "none";
  std::ostringstream os;
  bool first = true;
  auto sep = [&] {
    if (!first) os << ", ";
    first = false;
  };
  for (const Kill& k : kills) {
    sep();
    os << "kill worker " << k.worker << " @ " << k.time << "s";
  }
  if (drop_prob > 0.0) {
    sep();
    os << "drop " << drop_prob * 100.0 << "%";
  }
  if (dup_prob > 0.0) {
    sep();
    os << "dup " << dup_prob * 100.0 << "%";
  }
  if (delay_prob > 0.0) {
    sep();
    os << "delay " << delay_prob * 100.0 << "% by " << delay_seconds << "s";
  }
  os << " (seed " << seed << ")";
  return os.str();
}

FaultInjector::FaultInjector(sim::Engine& engine, net::Cluster& cluster,
                             FaultPlan plan)
    : engine_(&engine),
      cluster_(&cluster),
      plan_(std::move(plan)),
      rng_(plan_.seed) {}

void FaultInjector::arm(dts::Runtime& runtime) {
  DEISA_CHECK(!armed_, "fault injector armed twice");
  armed_ = true;
  if (plan_.empty()) return;  // no hook, no RNG draws: bit-identical runs
  if (plan_.drop_prob > 0.0 || plan_.dup_prob > 0.0 ||
      plan_.delay_prob > 0.0) {
    cluster_->set_fault_hook([this](int /*src*/, int /*dst*/,
                                    std::uint64_t /*bytes*/,
                                    net::Delivery delivery) {
      net::FaultDecision fd;
      // One draw per opportunity, in deterministic engine order: the
      // decision stream is a pure function of the plan seed.
      if (plan_.drop_prob > 0.0 &&
          (delivery == net::Delivery::kDroppable ||
           delivery == net::Delivery::kLossy))
        fd.drop = rng_.uniform() < plan_.drop_prob;
      if (!fd.drop && plan_.dup_prob > 0.0 &&
          (delivery == net::Delivery::kIdempotent ||
           delivery == net::Delivery::kLossy))
        fd.duplicate = rng_.uniform() < plan_.dup_prob;
      if (plan_.delay_prob > 0.0 && rng_.uniform() < plan_.delay_prob)
        fd.extra_delay = plan_.delay_seconds;
      return fd;
    });
  }
  for (const FaultPlan::Kill& k : plan_.kills) {
    DEISA_CHECK(k.worker >= 0 && k.worker < runtime.num_workers(),
                "fault plan kills unknown worker " << k.worker);
    engine_->spawn(kill_at(runtime, k.worker, k.time));
  }
}

sim::Co<void> FaultInjector::kill_at(dts::Runtime& runtime, int worker,
                                     double time) {
  co_await engine_->delay(time);
  dts::Worker& w = runtime.worker(worker);
  if (!w.alive()) co_return;
  w.crash();
  ++kills_performed_;
  obs::count("fault.workers_killed");
  obs::trace_instant("fault", "inject",
                     "kill:worker-" + std::to_string(worker));
  DEISA_TRACE("fault", "killed worker " << worker << " at t=" << time);
}

}  // namespace deisa::fault
