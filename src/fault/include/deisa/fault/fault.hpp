// Deterministic fault injection: a seeded FaultPlan (worker crashes at
// fixed sim times, probabilistic message drop/duplication, bridge-push
// delays) armed against a running cluster. Every decision draws from one
// explicitly seeded stream consulted in deterministic engine order, so a
// plan plus a seed reproduces the exact same failure trace — the property
// the recovery tests and the CI fault matrix rely on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "deisa/net/cluster.hpp"
#include "deisa/util/rng.hpp"

namespace deisa::dts {
class Runtime;
}

namespace deisa::fault {

struct FaultPlan {
  struct Kill {
    Kill() = default;
    Kill(int worker_, double time_) : worker(worker_), time(time_) {}
    int worker = -1;   // dts worker id
    double time = 0.0; // sim seconds after arming
  };

  /// Fail-stop worker crashes at fixed times.
  std::vector<Kill> kills;
  /// Probability a droppable/lossy message is silently lost.
  double drop_prob = 0.0;
  /// Probability an idempotent/lossy message is delivered twice.
  double dup_prob = 0.0;
  /// Probability any perturbable message (including bulk pushes) is
  /// delayed by `delay_seconds`.
  double delay_prob = 0.0;
  double delay_seconds = 0.0;
  /// Seed of the injection stream; same plan + seed = same fault trace.
  std::uint64_t seed = 0xFA017;

  bool empty() const {
    return kills.empty() && drop_prob <= 0.0 && dup_prob <= 0.0 &&
           delay_prob <= 0.0;
  }

  /// Parse a compact spec, e.g.
  ///   "kill:1@3.5;drop:0.01;dup:0.02;delay:0.05@0.2;seed:7"
  /// kill may repeat; delay is prob@seconds. Throws util::Error on
  /// malformed input.
  static FaultPlan parse(const std::string& spec);

  /// One-line human-readable summary ("2 kills, drop 1%, ...").
  std::string describe() const;
};

/// Arms a FaultPlan against a cluster + runtime: installs the cluster
/// fault hook (message perturbation) and spawns one kill actor per
/// planned crash. Must outlive the engine run. With an empty plan this
/// is a no-op — no hook is installed and no RNG is ever drawn, so
/// fault-free runs keep byte-identical event streams.
class FaultInjector {
public:
  FaultInjector(sim::Engine& engine, net::Cluster& cluster, FaultPlan plan);

  /// Install hooks and spawn kill actors (call once, before engine.run).
  void arm(dts::Runtime& runtime);

  const FaultPlan& plan() const { return plan_; }
  std::uint64_t kills_performed() const { return kills_performed_; }

private:
  sim::Co<void> kill_at(dts::Runtime& runtime, int worker, double time);

  sim::Engine* engine_;
  net::Cluster* cluster_;
  FaultPlan plan_;
  util::Rng rng_;
  std::uint64_t kills_performed_ = 0;
  bool armed_ = false;
};

}  // namespace deisa::fault
