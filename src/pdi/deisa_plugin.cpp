#include "deisa/pdi/deisa_plugin.hpp"

namespace deisa::pdi {

DeisaPlugin::DeisaPlugin(config::Node plugin_spec, dts::Client& client,
                         core::Mode mode, int rank, int nranks)
    : spec_(std::move(plugin_spec)), bridge_(client, mode, rank, nranks) {
  init_event_ = spec_.get_string("init_on", "init");
  if (const config::Node* map_in = spec_.find("map_in")) {
    for (const auto& [local, global] : map_in->as_map())
      map_in_.emplace(local, global.as_string());
  }
}

core::VirtualArray DeisaPlugin::parse_array(const std::string& name,
                                            const config::Node& node,
                                            const config::Env& env) const {
  return core::VirtualArray::from_config(name, node, env);
}

exec::Co<void> DeisaPlugin::on_event(DataStore& store,
                                    const std::string& name) {
  if (name != init_event_ || initialized_) co_return;
  initialized_ = true;
  // Every rank parses the descriptors (they are needed locally to locate
  // blocks); rank 0 additionally publishes them to the adaptor.
  const config::Node* arrays_spec = spec_.find("deisa_arrays");
  DEISA_CHECK(arrays_spec != nullptr && arrays_spec->is_map(),
              "deisa plugin config lacks a deisa_arrays map");
  for (const auto& [aname, anode] : arrays_spec->as_map())
    arrays_.push_back(parse_array(aname, anode, store.env()));
  if (bridge_.rank() == 0) co_await bridge_.publish_arrays(arrays_);
  if (core::uses_external_tasks(bridge_.mode())) {
    co_await bridge_.wait_contract();
  } else {
    co_await bridge_.deisa1_fetch_selection();
  }
}

array::Index DeisaPlugin::block_coord_of(const core::VirtualArray& va,
                                         const config::Env& env) const {
  // The `start` expressions give the block's global start indices; the
  // chunk coordinate is start / subsize per dimension (time included:
  // start[0] is $step and the time block size is 1).
  const config::Node* arrays_spec = spec_.find("deisa_arrays");
  const config::Node& node = arrays_spec->at(va.name);
  const config::Node& start = node.at("start");
  DEISA_CHECK(start.size() == va.shape.size(),
              "start rank mismatch for array " << va.name);
  array::Index coord(va.shape.size());
  for (std::size_t d = 0; d < coord.size(); ++d) {
    const std::int64_t s = config::eval_node_int(start.at(d), env);
    DEISA_CHECK(s % va.subsize[d] == 0,
                "block start " << s << " in dim " << d
                               << " not aligned to block size "
                               << va.subsize[d]);
    coord[d] = s / va.subsize[d];
  }
  return coord;
}

exec::Co<void> DeisaPlugin::on_data(DataStore& store, const std::string& name,
                                   const array::NDArray& data) {
  const auto it = map_in_.find(name);
  if (it == map_in_.end()) co_return;
  DEISA_CHECK(initialized_, "data exposed before the init event");
  const core::VirtualArray* va = nullptr;
  for (const auto& a : arrays_)
    if (a.name == it->second) va = &a;
  DEISA_CHECK(va != nullptr, "map_in target '" << it->second
                                               << "' is not a deisa array");
  const array::Index coord = block_coord_of(*va, store.env());
  // The exposed buffer is 2D spatial; the deisa block carries the time
  // dimension with extent 1 in front.
  array::Index block_shape = va->subsize;
  array::NDArray block(block_shape);
  DEISA_CHECK(static_cast<std::int64_t>(data.flat().size()) == block.size(),
              "exposed data size does not match the deisa block size");
  std::copy(data.flat().begin(), data.flat().end(), block.flat().begin());
  const std::uint64_t bytes = block.bytes();
  dts::Data payload = dts::Data::make<array::NDArray>(std::move(block), bytes);
  if (core::uses_external_tasks(bridge_.mode())) {
    (void)co_await bridge_.send_block(*va, coord, std::move(payload));
  } else {
    (void)co_await bridge_.deisa1_send_block(*va, coord, std::move(payload));
  }
}

}  // namespace deisa::pdi
