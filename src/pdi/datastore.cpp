#include "deisa/pdi/datastore.hpp"

#include "deisa/util/error.hpp"

namespace deisa::pdi {

DataStore::DataStore(config::Node spec) : spec_(std::move(spec)) {}

void DataStore::set_meta(const std::string& name, config::Value value) {
  env_.set(name, std::move(value));
}

void DataStore::add_plugin(std::shared_ptr<Plugin> plugin) {
  DEISA_CHECK(plugin != nullptr, "null plugin");
  plugins_.push_back(std::move(plugin));
}

exec::Co<void> DataStore::expose(const std::string& name,
                                const array::NDArray& data) {
  for (const auto& p : plugins_) co_await p->on_data(*this, name, data);
}

exec::Co<void> DataStore::event(const std::string& name) {
  for (const auto& p : plugins_) co_await p->on_event(*this, name);
}

}  // namespace deisa::pdi
