// PDI-style data interface (Roussel et al. 2017): the simulation exposes
// named buffers and raises named events against a declarative YAML
// specification; plugins react to both. This keeps the I/O/coupling
// concern out of the solver entirely — the Heat2D miniapp only calls
// set_meta / expose / event, exactly as a PDI-instrumented code would.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "deisa/array/ndarray.hpp"
#include "deisa/config/expr.hpp"
#include "deisa/config/node.hpp"
#include "deisa/exec/executor.hpp"

namespace deisa::pdi {

class DataStore;

/// Plugin interface: callbacks are coroutines because plugins perform
/// (simulated) communication.
class Plugin {
public:
  virtual ~Plugin() = default;
  virtual exec::Co<void> on_event(DataStore& store, const std::string& name) = 0;
  virtual exec::Co<void> on_data(DataStore& store, const std::string& name,
                                const array::NDArray& data) = 0;
};

class DataStore {
public:
  /// `spec` is the full configuration tree (Listing 1 shape).
  explicit DataStore(config::Node spec);

  const config::Node& spec() const { return spec_; }

  /// Set a metadata value referenced by $-expressions ($step, $rank,
  /// $cfg...).
  void set_meta(const std::string& name, config::Value value);
  const config::Env& env() const { return env_; }

  void add_plugin(std::shared_ptr<Plugin> plugin);

  /// Expose a named buffer to the plugins (no copy: the reference is only
  /// valid for the duration of the call, as in PDI's share/reclaim).
  exec::Co<void> expose(const std::string& name, const array::NDArray& data);
  /// Raise a named event.
  exec::Co<void> event(const std::string& name);

private:
  config::Node spec_;
  config::Env env_;
  std::vector<std::shared_ptr<Plugin>> plugins_;
};

}  // namespace deisa::pdi
