// The PDI deisa plugin (§2.3): reads the Listing-1 configuration, owns
// this rank's Bridge, and drives the coupling:
//   * on the `init_on` event: rank 0 publishes the virtual arrays; every
//     rank then blocks until the contract is signed;
//   * on each exposed data named in `map_in`: evaluates the block's
//     spatiotemporal coordinate from the `start` expressions and sends it
//     (contract-filtered) to the preselected worker.
#pragma once

#include <map>

#include "deisa/core/bridge.hpp"
#include "deisa/pdi/datastore.hpp"

namespace deisa::pdi {

class DeisaPlugin final : public Plugin {
public:
  /// `plugin_spec` is the `PdiPluginDeisa:` subtree of the config;
  /// `client` stands in for the connection the real plugin makes through
  /// the scheduler_info file.
  DeisaPlugin(config::Node plugin_spec, dts::Client& client, core::Mode mode,
              int rank, int nranks);

  exec::Co<void> on_event(DataStore& store, const std::string& name) override;
  exec::Co<void> on_data(DataStore& store, const std::string& name,
                        const array::NDArray& data) override;

  core::Bridge& bridge() { return bridge_; }
  /// The virtual arrays parsed from the config (rank 0 after init).
  const std::vector<core::VirtualArray>& arrays() const { return arrays_; }

private:
  core::VirtualArray parse_array(const std::string& name,
                                 const config::Node& node,
                                 const config::Env& env) const;
  array::Index block_coord_of(const core::VirtualArray& va,
                              const config::Env& env) const;

  config::Node spec_;
  core::Bridge bridge_;
  std::string init_event_;
  std::map<std::string, std::string> map_in_;  // local name -> deisa array
  std::vector<core::VirtualArray> arrays_;
  bool initialized_ = false;
};

}  // namespace deisa::pdi
