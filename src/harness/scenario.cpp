#include "deisa/harness/scenario.hpp"

#include <atomic>
#include <cmath>

#include "deisa/apps/heat2d.hpp"
#include "deisa/core/adaptor.hpp"
#include "deisa/core/bridge.hpp"
#include "deisa/io/posthoc.hpp"
#include "deisa/mpix/comm.hpp"
#include "deisa/obs/dataplane.hpp"
#include "deisa/obs/observation.hpp"
#include "deisa/rt/threaded_executor.hpp"
#include "deisa/rt/threaded_transport.hpp"

namespace deisa::harness {

namespace arr = array;

const char* to_string(Substrate s) {
  switch (s) {
    case Substrate::kSim: return "sim";
    case Substrate::kThreads: return "threads";
  }
  return "?";
}

const char* to_string(Pipeline p) {
  switch (p) {
    case Pipeline::kPosthocOldIpca: return "posthoc-old-ipca";
    case Pipeline::kPosthocNewIpca: return "posthoc-new-ipca";
    case Pipeline::kDeisa1: return "DEISA1";
    case Pipeline::kDeisa2: return "DEISA2";
    case Pipeline::kDeisa3: return "DEISA3";
  }
  return "?";
}

bool is_posthoc(Pipeline p) {
  return p == Pipeline::kPosthocOldIpca || p == Pipeline::kPosthocNewIpca;
}

namespace {
core::Mode mode_of(Pipeline p) {
  switch (p) {
    case Pipeline::kDeisa1: return core::Mode::kDeisa1;
    case Pipeline::kDeisa2: return core::Mode::kDeisa2;
    default: return core::Mode::kDeisa3;
  }
}
}  // namespace

net::ClusterParams ScenarioParams::irene_cluster() {
  net::ClusterParams c;
  c.physical_nodes = 1653;  // Irene skylake partition
  c.leaf_radix = 24;        // pruned fat tree leaves
  c.uplinks_per_leaf = 8;
  c.link_bandwidth = 12.5e9;   // 100 Gb/s EDR
  c.software_bandwidth = 0.55e9;  // dask TCP+serialization effective rate
  c.memory_bandwidth = 1.5e9;    // loopback TCP on-node
  c.hop_latency = 0.25e-6;
  c.software_overhead = 4.0e-6;
  c.jitter_sigma = 0.0;  // IB fabrics are deterministic; noise comes from the scheduler
  return c;
}

dts::SchedulerParams ScenarioParams::paper_scheduler() {
  dts::SchedulerParams s;
  s.service_jitter_sigma = 0.5;  // Python GC / GIL noise
  return s;
}

std::int64_t ScenarioParams::local_edge() const {
  const auto doubles = static_cast<double>(block_bytes / sizeof(double));
  auto edge = static_cast<std::int64_t>(std::llround(std::sqrt(doubles)));
  return std::max<std::int64_t>(1, edge);
}

std::pair<int, int> ScenarioParams::proc_grid() const {
  // Roughly square grid, x fastest (Listing 1 layout).
  int px = static_cast<int>(std::sqrt(static_cast<double>(ranks)));
  while (px > 1 && ranks % px != 0) --px;
  return {px, ranks / px};
}

core::VirtualArray ScenarioParams::virtual_array(int index) const {
  const auto [px, py] = proc_grid();
  const std::int64_t edge = local_edge();
  std::string name = "G_temp";
  if (index > 0) name += std::to_string(index + 1);  // G_temp2, G_temp3, ...
  return core::VirtualArray(
      std::move(name), arr::Index{timesteps, edge * px, edge * py},
      arr::Index{1, edge, edge});
}

std::vector<core::VirtualArray> ScenarioParams::virtual_arrays() const {
  std::vector<core::VirtualArray> vas;
  for (int i = 0; i < std::max(1, arrays); ++i) vas.push_back(virtual_array(i));
  return vas;
}

int ScenarioParams::nodes_needed() const {
  const int worker_nodes = (workers + workers_per_node - 1) / workers_per_node;
  const int sim_nodes = (ranks + ranks_per_node - 1) / ranks_per_node;
  return 2 + worker_nodes + sim_nodes;
}

util::Summary RunResult::iteration_summary(
    const std::vector<std::vector<double>>& series, int skip_first) const {
  std::vector<double> flat;
  for (const auto& per_rank : series)
    for (std::size_t t = 0; t < per_rank.size(); ++t)
      if (static_cast<int>(t) >= skip_first) flat.push_back(per_rank[t]);
  return util::summarize(flat);
}

std::vector<std::pair<double, double>> RunResult::per_rank_io() const {
  std::vector<std::pair<double, double>> out;
  for (const auto& per_rank : sim_io) {
    util::RunningStats rs;
    for (double v : per_rank) rs.add(v);
    out.emplace_back(rs.mean(), rs.stddev());
  }
  return out;
}

namespace {

/// Everything one scenario run needs, wired together. The substrate knob
/// decides which Executor/Transport backend sits behind the `engine` and
/// `cluster` references; everything downstream only sees the seam.
struct World {
  explicit World(const ScenarioParams& p)
      : params(p),
        sim_engine(p.substrate == Substrate::kSim
                       ? std::make_unique<sim::Engine>()
                       : nullptr),
        thr_engine(p.substrate == Substrate::kThreads
                       ? std::make_unique<rt::ThreadedExecutor>(
                             rt::ThreadedExecutorParams{p.substrate_threads,
                                                        p.time_scale})
                       : nullptr),
        engine(sim_engine ? static_cast<exec::Executor&>(*sim_engine)
                          : *thr_engine),
        sim_cluster(sim_engine ? std::make_unique<net::Cluster>(
                                     *sim_engine,
                                     [&] {
                                       net::ClusterParams c = p.cluster;
                                       c.jitter_seed =
                                           p.alloc_seed * 0x9e3779b9ULL + 7;
                                       return c;
                                     }())
                               : nullptr),
        thr_cluster(thr_engine ? std::make_unique<rt::ThreadedTransport>(
                                     *thr_engine,
                                     rt::ThreadedTransportParams{
                                         p.cluster.physical_nodes})
                               : nullptr),
        cluster(sim_cluster ? static_cast<exec::Transport&>(*sim_cluster)
                            : *thr_cluster),
        pfs(engine, [&] {
          io::PfsParams f = p.pfs;
          f.seed = p.alloc_seed * 31 + 3;
          return f;
        }()) {
    DEISA_CHECK(p.nodes_needed() <= p.cluster.physical_nodes,
                "scenario needs " << p.nodes_needed() << " nodes, cluster has "
                                  << p.cluster.physical_nodes);
    nodes = net::allocate_nodes(p.cluster, p.nodes_needed(), p.alloc_seed);
    scheduler_node = nodes[0];
    client_node = nodes[1];
    const int worker_node_count =
        (p.workers + p.workers_per_node - 1) / p.workers_per_node;
    std::vector<int> worker_nodes;
    for (int w = 0; w < p.workers; ++w)
      worker_nodes.push_back(nodes[2 + w / p.workers_per_node]);
    std::vector<int> rank_nodes;
    for (int r = 0; r < p.ranks; ++r)
      rank_nodes.push_back(
          nodes[2 + worker_node_count + r / p.ranks_per_node]);

    dts::RuntimeParams rp;
    rp.scheduler = p.sched;
    rp.scheduler.seed = p.alloc_seed * 131 + 17;
    // A non-empty fault plan needs the failure detector armed; pick a
    // timeout comfortably above the heartbeat period unless the caller
    // chose one.
    if (!p.faults.empty() && rp.scheduler.heartbeat_timeout <= 0.0)
      rp.scheduler.heartbeat_timeout = 3.5 * p.worker_heartbeat_interval;
    rp.worker.heartbeat_interval = p.worker_heartbeat_interval;
    rp.worker.max_concurrent_fetches = p.max_concurrent_fetches;
    rp.data_plane = p.data_plane;
    rp.scheduler.release_consumed = p.release_consumed;
    rp.shards = p.shards;
    runtime = std::make_unique<dts::Runtime>(engine, cluster, scheduler_node,
                                             worker_nodes, rp);
    if (sim_engine) {
      injector = std::make_unique<fault::FaultInjector>(
          *sim_engine, *sim_cluster, p.faults);
    } else {
      DEISA_CHECK(p.faults.empty(),
                  "fault plans are modeled constructs (virtual-time kill "
                  "schedules); they require substrate=sim");
    }
    comm = std::make_unique<mpix::Comm>(cluster, rank_nodes);
    this->rank_nodes = std::move(rank_nodes);
  }

  ~World() { finish(); }

  /// Threads substrate: join all worker threads (dropping anything still
  /// suspended) so nothing races the stats reads below or outlives the
  /// actors' dependencies. No-op under sim; idempotent.
  void finish() {
    if (thr_engine) thr_engine->shutdown();
  }

  const ScenarioParams& params;
  std::unique_ptr<sim::Engine> sim_engine;
  std::unique_ptr<rt::ThreadedExecutor> thr_engine;
  exec::Executor& engine;
  std::unique_ptr<net::Cluster> sim_cluster;
  std::unique_ptr<rt::ThreadedTransport> thr_cluster;
  exec::Transport& cluster;
  io::Pfs pfs;
  std::vector<int> nodes;
  int scheduler_node = 0;
  int client_node = 0;
  std::vector<int> rank_nodes;
  std::unique_ptr<dts::Runtime> runtime;
  std::unique_ptr<fault::FaultInjector> injector;  // sim substrate only
  std::unique_ptr<mpix::Comm> comm;
};

ml::InSituIpcaOptions ipca_options(const ScenarioParams& p,
                                   const std::string& name, bool old_ipca) {
  ml::InSituIpcaOptions o;
  o.pca.n_components = p.n_components;
  o.pca.randomized = !old_ipca;  // Listing 2: the NEW IPCA is randomized
  o.labels = {"t", "X", "Y"};
  o.feature_labels = {"X"};
  o.sample_labels = {"Y"};
  o.cost = p.analytics;
  // The old dask-ml IPCA runs the exact solver: ≈ 2.5x the update cost.
  if (old_ipca) o.cost.cost_multiplier *= 2.5;
  o.name = name;
  o.distributed_update = !p.real_data;
  return o;
}

/// Contract selection: full time and X; leading fraction of Y, aligned to
/// block boundaries (at least one block row).
arr::Box contract_box(const core::VirtualArray& va, double fraction) {
  arr::Box box;
  box.lo.assign(va.shape.size(), 0);
  box.hi = va.shape;
  if (fraction < 1.0) {
    const std::int64_t blocks_y = va.shape[2] / va.subsize[2];
    std::int64_t keep =
        std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                      std::llround(fraction * blocks_y)));
    box.hi[2] = keep * va.subsize[2];
  }
  return box;
}

/// ChunkProvider over a contiguous sub-box of a DArray (contract-filtered
/// analytics: the graph only references the selected chunks).
class SelectedArrayProvider final : public ml::ChunkProvider {
public:
  SelectedArrayProvider(const arr::DArray& da, const arr::Box& box)
      : darray_(&da), box_(box) {
    arr::Index sub_shape(box.ndim());
    for (std::size_t d = 0; d < box.ndim(); ++d) sub_shape[d] = box.extent(d);
    sub_grid_ = arr::ChunkGrid(sub_shape, da.grid().chunk_shape());
    for (std::size_t d = 0; d < box.ndim(); ++d) {
      DEISA_CHECK(box.lo[d] % da.grid().chunk_shape()[d] == 0 &&
                      box.extent(d) % da.grid().chunk_shape()[d] == 0,
                  "contract selection must align to block boundaries");
      chunk_offset_.push_back(box.lo[d] / da.grid().chunk_shape()[d]);
    }
  }

  const arr::ChunkGrid& grid() const override { return sub_grid_; }

  std::vector<dts::Key> chunks(int /*submission*/, std::int64_t t,
                               std::vector<dts::TaskSpec>& /*tasks*/) override {
    arr::Box slab;
    slab.lo.assign(sub_grid_.ndim(), 0);
    slab.hi = sub_grid_.shape();
    slab.lo[0] = t;
    slab.hi[0] = t + 1;
    std::vector<dts::Key> keys;
    for (const arr::Index& c : sub_grid_.chunks_overlapping(slab)) {
      arr::Index global = c;
      for (std::size_t d = 0; d < global.size(); ++d)
        global[d] += chunk_offset_[d];
      keys.push_back(darray_->key_of(global));
    }
    return keys;
  }

private:
  const arr::DArray* darray_;
  arr::Box box_;
  arr::ChunkGrid sub_grid_;
  std::vector<std::int64_t> chunk_offset_;
};

struct SharedState {
  explicit SharedState(exec::Executor& eng)
      : stop_heartbeats(eng), sim_done(eng), analytics_done(eng) {}
  exec::Event stop_heartbeats;
  exec::Event sim_done;
  exec::Event analytics_done;
  std::atomic<int> ranks_finished{0};
  std::vector<std::unique_ptr<core::Bridge>> bridges;
  std::unique_ptr<core::Adaptor> adaptor;
  std::vector<std::unique_ptr<ml::ChunkProvider>> providers;  // one per array
  std::map<std::string, arr::DArray> darrays;
};

dts::Data block_payload(const ScenarioParams& p, const apps::Heat2d* solver,
                        const core::VirtualArray& va) {
  if (!p.real_data || solver == nullptr)
    return dts::Data::sized(va.block_bytes());
  arr::NDArray block(va.subsize);
  const auto& field = solver->field().flat();
  DEISA_CHECK(field.size() == block.flat().size(),
              "solver block size mismatch");
  std::copy(field.begin(), field.end(), block.flat().begin());
  const std::uint64_t b = block.bytes();
  return dts::Data::make<arr::NDArray>(std::move(block), b);
}

/// One simulation rank of an in-transit (DEISA*) run.
exec::Co<void> deisa_rank_actor(World& w, SharedState& st, Pipeline pipeline,
                               int rank, RunResult& res) {
  const ScenarioParams& p = w.params;
  const std::vector<core::VirtualArray> vas = p.virtual_arrays();
  const core::VirtualArray& va = vas.front();
  const auto [px, py] = p.proc_grid();
  core::Bridge& bridge = *st.bridges[static_cast<std::size_t>(rank)];

  std::unique_ptr<apps::Heat2d> solver;
  if (p.real_data) {
    apps::Heat2dConfig hc;
    hc.local_nx = p.local_edge();
    hc.local_ny = p.local_edge();
    hc.proc_x = px;
    hc.proc_y = py;
    hc.timesteps = p.timesteps;
    solver = std::make_unique<apps::Heat2d>(hc, rank);
    solver->initialize();
  }

  if (rank == 0) {
    std::vector<core::VirtualArray> arrays = vas;
    co_await bridge.publish_arrays(std::move(arrays));
  }
  if (pipeline == Pipeline::kDeisa1) {
    co_await bridge.deisa1_fetch_selection();
  } else {
    co_await bridge.wait_contract();
  }
  co_await w.comm->barrier(rank);

  const double step_cost =
      apps::Heat2d::step_cost(p.local_edge() * p.local_edge(),
                              p.sim_cell_rate);
  for (int t = 0; t < p.timesteps; ++t) {
    double t0 = w.engine.now();
    co_await w.engine.delay(step_cost);
    if (solver) co_await solver->step(*w.comm);
    res.sim_compute[static_cast<std::size_t>(rank)]
        [static_cast<std::size_t>(t)] = w.engine.now() - t0;

    // Rank-characteristic skew (OS noise, cache state): microseconds, but
    // it pins the NIC/queue ordering so each iteration contends the same
    // way — per-rank comm times become repeatable, as observed on Irene.
    co_await w.engine.delay(2e-3 * static_cast<double>(rank + 1));
    t0 = w.engine.now();
    if (pipeline == Pipeline::kDeisa1) {
      const arr::Index coord = core::block_coord(va, {px, py}, rank, t);
      (void)co_await bridge.deisa1_send_block(
          va, coord, block_payload(p, solver.get(), va));
    } else {
      // Coalesced push path: one batch per array per step (a batch of
      // one block for single-array runs, but it keeps the heat2d
      // scenario on the same bridge code the multi-block producers
      // exercise). Multi-array runs push the same solver field under
      // each array's key space.
      for (const core::VirtualArray& a : vas) {
        const arr::Index coord = core::block_coord(a, {px, py}, rank, t);
        std::vector<std::pair<arr::Index, dts::Data>> blocks;
        blocks.emplace_back(coord, block_payload(p, solver.get(), a));
        (void)co_await bridge.send_blocks(a, std::move(blocks));
      }
    }
    res.sim_io[static_cast<std::size_t>(rank)][static_cast<std::size_t>(t)] =
        w.engine.now() - t0;
    co_await w.comm->barrier(rank);
  }
  if (++st.ranks_finished == p.ranks) {
    res.sim_end = w.engine.now();
    st.sim_done.set();
    st.stop_heartbeats.set();
  }
}

/// The analytics client of a DEISA2/3 run: signs the contract and submits
/// the WHOLE multi-timestep IPCA graph ahead of the data.
exec::Co<void> deisa23_adaptor_actor(World& w, SharedState& st,
                                    RunResult& res) {
  const ScenarioParams& p = w.params;
  core::Adaptor& adaptor = *st.adaptor;
  const auto arrays = co_await adaptor.get_deisa_arrays();
  // One selection per published array (same geometry, same contract
  // fraction); the multi-array workflow fits an independent IPCA per
  // array and concatenates the outputs in publication order.
  const arr::Box box = contract_box(arrays.at(0), p.contract_fraction);
  for (const core::VirtualArray& a : arrays)
    adaptor.select(a.name, arr::Selection(box));
  st.darrays = co_await adaptor.validate_contract();

  const double t0 = w.engine.now();
  std::vector<std::unique_ptr<ml::InSituIncrementalPca>> ipcas;
  std::vector<ml::IpcaFit> fits;
  for (std::size_t i = 0; i < arrays.size(); ++i) {
    const arr::DArray& da = st.darrays.at(arrays[i].name);
    st.providers.push_back(std::make_unique<SelectedArrayProvider>(da, box));
    const std::string name = i == 0 ? "ipca" : "ipca-a" + std::to_string(i);
    ipcas.push_back(std::make_unique<ml::InSituIncrementalPca>(
        adaptor.client(), ipca_options(p, name, false)));
    ml::IpcaFit fit;
    if (p.force_per_step_analytics) {
      fit = co_await ipcas.back()->fit_per_step(*st.providers.back());
    } else {
      fit = co_await ipcas.back()->fit_ahead_of_time(*st.providers.back());
    }
    fits.push_back(std::move(fit));
  }
  for (const ml::IpcaFit& fit : fits)
    co_await adaptor.client().wait_key(fit.singular_values_key);
  res.analytics_seconds = w.engine.now() - t0;
  if (p.real_data) {
    for (std::size_t i = 0; i < fits.size(); ++i) {
      const auto sv =
          co_await ipcas[i]->collect_vector(fits[i].singular_values_key);
      const auto ev =
          co_await ipcas[i]->collect_vector(fits[i].explained_variance_key);
      res.singular_values.insert(res.singular_values.end(), sv.begin(),
                                 sv.end());
      res.explained_variance.insert(res.explained_variance.end(), ev.begin(),
                                    ev.end());
    }
  }
  st.analytics_done.set();
}

/// The analytics client of a DEISA1 run: per-step graph submission driven
/// by per-step readiness queues (time dependencies managed manually).
exec::Co<void> deisa1_adaptor_actor(World& w, SharedState& st, RunResult& res) {
  const ScenarioParams& p = w.params;
  core::Adaptor& adaptor = *st.adaptor;
  const auto arrays = co_await adaptor.get_deisa_arrays();
  const core::VirtualArray& va = arrays.at(0);
  const arr::Box box = contract_box(va, p.contract_fraction);
  adaptor.select(va.name, arr::Selection(box));
  st.darrays = co_await adaptor.deisa1_publish_selection(p.ranks);
  const arr::DArray& da = st.darrays.at(va.name);

  const double t0 = w.engine.now();
  st.providers.push_back(std::make_unique<SelectedArrayProvider>(da, box));
  // DEISA1 pairs with the OLD IPCA throughout the evaluation.
  ml::InSituIncrementalPca ipca(adaptor.client(),
                                ipca_options(p, "ipca-d1", true));
  for (int t = 0; t < p.timesteps; ++t) {
    co_await adaptor.deisa1_wait_step(p.ranks);
    std::vector<dts::TaskSpec> tasks;
    ipca.build_step(*st.providers.back(), /*submission=*/t, t, tasks);
    std::vector<dts::Key> wants;
    wants.push_back(ipca.state_key(t));
    co_await adaptor.client().submit(std::move(tasks), std::move(wants));
    co_await adaptor.client().wait_key(ipca.state_key(t));
  }
  std::vector<dts::TaskSpec> tasks;
  ipca.build_outputs(tasks, p.timesteps);
  co_await adaptor.client().submit(std::move(tasks), {});
  const ml::IpcaFit fit = ipca.fit_info(p.timesteps, p.timesteps + 1);
  co_await adaptor.client().wait_key(fit.singular_values_key);
  res.analytics_seconds = w.engine.now() - t0;
  if (p.real_data) {
    res.singular_values = co_await ipca.collect_vector(fit.singular_values_key);
    res.explained_variance =
        co_await ipca.collect_vector(fit.explained_variance_key);
  }
  st.analytics_done.set();
}

/// One simulation rank of a post-hoc run: compute + PFS write.
exec::Co<void> posthoc_rank_actor(World& w, SharedState& st,
                                 io::PosthocDataset& ds,
                                 io::PosthocWriter& writer, int rank,
                                 RunResult& res) {
  const ScenarioParams& p = w.params;
  const core::VirtualArray va = p.virtual_array();
  const auto [px, py] = p.proc_grid();

  std::unique_ptr<apps::Heat2d> solver;
  if (p.real_data) {
    apps::Heat2dConfig hc;
    hc.local_nx = p.local_edge();
    hc.local_ny = p.local_edge();
    hc.proc_x = px;
    hc.proc_y = py;
    hc.timesteps = p.timesteps;
    solver = std::make_unique<apps::Heat2d>(hc, rank);
    solver->initialize();
  }
  co_await w.comm->barrier(rank);
  const double step_cost = apps::Heat2d::step_cost(
      p.local_edge() * p.local_edge(), p.sim_cell_rate);
  for (int t = 0; t < p.timesteps; ++t) {
    double t0 = w.engine.now();
    co_await w.engine.delay(step_cost);
    if (solver) co_await solver->step(*w.comm);
    res.sim_compute[static_cast<std::size_t>(rank)]
        [static_cast<std::size_t>(t)] = w.engine.now() - t0;

    co_await w.engine.delay(2e-3 * static_cast<double>(rank + 1));
    t0 = w.engine.now();
    const arr::Index coord = core::block_coord(va, {px, py}, rank, t);
    if (p.real_data && solver) {
      arr::NDArray block(va.subsize);
      const auto& field = solver->field().flat();
      std::copy(field.begin(), field.end(), block.flat().begin());
      co_await writer.write_block(coord, &block);
    } else {
      co_await writer.write_block(coord, nullptr);
    }
    res.sim_io[static_cast<std::size_t>(rank)][static_cast<std::size_t>(t)] =
        w.engine.now() - t0;
    co_await w.comm->barrier(rank);
  }
  (void)ds;
  if (++st.ranks_finished == p.ranks) {
    res.sim_end = w.engine.now();
    st.sim_done.set();
    st.stop_heartbeats.set();
  }
}

/// The analytics phase of a post-hoc run, started after the simulation.
exec::Co<void> posthoc_analytics_actor(World& w, SharedState& st,
                                      io::PosthocDataset& ds, bool old_ipca,
                                      RunResult& res) {
  const ScenarioParams& p = w.params;
  co_await st.sim_done.wait();
  dts::Client& client = w.runtime->make_client(w.client_node);
  auto provider = std::make_unique<io::PosthocReadProvider>(w.pfs, &ds);
  const double t0 = w.engine.now();
  ml::InSituIncrementalPca ipca(client,
                                ipca_options(p, "ipca-ph", old_ipca));
  ml::IpcaFit fit;
  if (old_ipca) {
    fit = co_await ipca.fit_per_step(*provider);
  } else {
    fit = co_await ipca.fit_ahead_of_time(*provider);
  }
  co_await client.wait_key(fit.singular_values_key);
  res.analytics_seconds = w.engine.now() - t0;
  if (p.real_data) {
    res.singular_values = co_await ipca.collect_vector(fit.singular_values_key);
    res.explained_variance =
        co_await ipca.collect_vector(fit.explained_variance_key);
  }
  st.analytics_done.set();
}

/// Waits for both phases then tears the cluster down so the engine drains.
exec::Co<void> orchestrator(World& w, SharedState& st, RunResult& res) {
  co_await st.sim_done.wait();
  co_await st.analytics_done.wait();
  res.total_seconds = w.engine.now();
  co_await w.runtime->shutdown();
}

}  // namespace

RunResult run_scenario(Pipeline pipeline, const ScenarioParams& params) {
  DEISA_CHECK(params.arrays >= 1, "scenario needs at least one array");
  DEISA_CHECK(params.arrays == 1 || (pipeline == Pipeline::kDeisa2 ||
                                     pipeline == Pipeline::kDeisa3),
              "multi-array workflows require the external-task pipelines "
              "(DEISA2/3); got "
                  << to_string(pipeline) << " with " << params.arrays
                  << " arrays");
  World w(params);
  // Attach the observability layer for the duration of the run: a metrics
  // registry always, a trace recorder only when asked for, both stamped
  // with the engine's simulated time. Previous installations (e.g. an
  // outer test harness) are restored on return.
  std::shared_ptr<obs::Recorder> recorder;
  if (params.trace)
    recorder = std::make_shared<obs::Recorder>(params.trace_capacity,
                                               params.trace_drop_policy);
  obs::MetricsRegistry registry;
  obs::ObservationScope scope(recorder.get(), &registry,
                              [&engine = w.engine] { return engine.now(); });
  SharedState st(w.engine);
  RunResult res;
  res.pipeline = pipeline;
  // Replay provenance: the generator seed and placement policy ride with
  // the result, the metrics snapshot, and (when tracing) the trace
  // itself, so a corpus failure names its own reproduction command.
  res.scenario_seed = params.scenario_seed;
  res.policy = params.sched.policy;
  obs::gauge_set("scenario.seed",
                 static_cast<double>(params.scenario_seed));
  obs::gauge_set("scenario.policy",
                 static_cast<double>(params.sched.policy));
  if (recorder)
    recorder->instant(
        recorder->track("harness", "scenario"),
        "scenario:seed=" + std::to_string(params.scenario_seed),
        {obs::arg("policy", dts::to_string(params.sched.policy)),
         obs::arg("pipeline", to_string(pipeline))});
  res.sim_compute.assign(
      static_cast<std::size_t>(params.ranks),
      std::vector<double>(static_cast<std::size_t>(params.timesteps), 0.0));
  res.sim_io = res.sim_compute;

  io::PosthocDataset dataset;
  std::unique_ptr<io::PosthocWriter> writer;
  bool drained = false;

  // Under the threads substrate actors start running the moment they are
  // spawned, so everything they touch (st, res, dataset, writer) is set
  // up before the first spawn and the executor is joined (w.finish())
  // before this frame unwinds — including on the throwing paths.
  try {
    w.runtime->start();
    if (w.injector) w.injector->arm(*w.runtime);

    if (is_posthoc(pipeline)) {
      dataset =
          io::PosthocDataset("/pfs/heat2d", params.virtual_array().grid());
      if (params.real_data) {
        const auto dir = std::filesystem::temp_directory_path() /
                         ("deisa-posthoc-" + std::to_string(params.alloc_seed));
        dataset.file = io::H5Mini::create(dir, dataset.grid.shape(),
                                          dataset.grid.chunk_shape());
      }
      writer = std::make_unique<io::PosthocWriter>(w.pfs, &dataset);
      // All post-hoc actors share the writer and dataset; one strand keeps
      // their interleaving at suspension points only, exactly the
      // guarantee the simulator gives globally (no-op under sim).
      void* io_strand = w.engine.new_strand();
      for (int r = 0; r < params.ranks; ++r)
        w.engine.spawn_on(io_strand,
                          posthoc_rank_actor(w, st, dataset, *writer, r, res));
      w.engine.spawn_on(
          io_strand,
          posthoc_analytics_actor(
              w, st, dataset, pipeline == Pipeline::kPosthocOldIpca, res));
    } else {
      // One bridge (client connection) per rank, plus the adaptor's
      // client. Each rank gets its own strand holding its bridge
      // (including the repush listener the constructor spawns), its rank
      // actor and its heartbeat loop, so that trio never runs
      // concurrently with itself. Strands are no-ops under sim,
      // preserving the exact pre-seam event order.
      std::vector<void*> rank_strands(static_cast<std::size_t>(params.ranks));
      for (auto& s : rank_strands) s = w.engine.new_strand();
      for (int r = 0; r < params.ranks; ++r) {
        dts::Client& c =
            w.runtime->make_client(w.rank_nodes[static_cast<std::size_t>(r)]);
        exec::StrandScope strand_scope(
            w.engine, rank_strands[static_cast<std::size_t>(r)]);
        st.bridges.push_back(std::make_unique<core::Bridge>(
            c, mode_of(pipeline), r, params.ranks));
      }
      st.adaptor = std::make_unique<core::Adaptor>(
          w.runtime->make_client(w.client_node), mode_of(pipeline));
      for (int r = 0; r < params.ranks; ++r) {
        void* s = rank_strands[static_cast<std::size_t>(r)];
        w.engine.spawn_on(s, deisa_rank_actor(w, st, pipeline, r, res));
        w.engine.spawn_on(
            s, st.bridges[static_cast<std::size_t>(r)]->run_heartbeats(
                   st.stop_heartbeats));
      }
      void* adaptor_strand = w.engine.new_strand();
      if (pipeline == Pipeline::kDeisa1) {
        w.engine.spawn_on(adaptor_strand, deisa1_adaptor_actor(w, st, res));
      } else {
        w.engine.spawn_on(adaptor_strand, deisa23_adaptor_actor(w, st, res));
      }
    }
    w.engine.spawn_on(w.engine.new_strand(), orchestrator(w, st, res));
    // Watchdog: a scenario that cannot complete within 10 simulated hours
    // has diverged (e.g. a scheduler saturated beyond recovery).
    drained = w.engine.run_until(36000.0);
    w.finish();
  } catch (...) {
    w.finish();
    throw;
  }
  DEISA_CHECK(drained && st.analytics_done.is_set() && st.sim_done.is_set(),
              "scenario did not complete within the simulated-time cap ("
                  << to_string(pipeline) << ", " << params.ranks
                  << " ranks): the configuration diverges");

  // Aggregated over shards (at shards == 1 these read the exact counters
  // of the single scheduler, as before).
  const dts::ShardedScheduler& sched = w.runtime->sharded();
  res.scheduler_messages = sched.total_messages();
  for (auto kind :
       {dts::SchedMsgKind::kUpdateGraph, dts::SchedMsgKind::kTaskFinished,
        dts::SchedMsgKind::kUpdateData, dts::SchedMsgKind::kCreateExternal,
        dts::SchedMsgKind::kWaitKey, dts::SchedMsgKind::kHeartbeatWorker,
        dts::SchedMsgKind::kHeartbeatBridge, dts::SchedMsgKind::kVariableSet,
        dts::SchedMsgKind::kVariableGet, dts::SchedMsgKind::kQueuePut,
        dts::SchedMsgKind::kQueueGet})
    res.scheduler_messages_by_kind[dts::to_string(kind)] =
        sched.messages_received(kind);
  res.shards = sched.num_shards();
  for (int s = 0; s < sched.num_shards(); ++s)
    res.shard_messages.push_back(sched.shard(s).total_messages());
  res.shard_remote_edges = sched.remote_edges();
  res.shard_notify_msgs = sched.notify_msgs();
  res.shard_release_acks = sched.release_acks();
  for (const auto& b : st.bridges) {
    res.bridge_blocks_sent += b->blocks_sent();
    res.bridge_blocks_filtered += b->blocks_filtered();
  }
  res.network_bytes = w.cluster.stats().bytes;
  res.scheduler_busy_seconds = sched.total_service_time();
  res.keys_released = sched.keys_released();
  for (int i = 0; i < w.runtime->num_workers(); ++i) {
    res.worker_busy_seconds.push_back(w.runtime->worker(i).busy_time());
    res.worker_tasks.push_back(w.runtime->worker(i).tasks_executed());
    res.worker_peak_bytes =
        std::max(res.worker_peak_bytes, w.runtime->worker(i).peak_memory_bytes());
  }
  if (const dts::ProxyDepot* depot = w.runtime->depot())
    res.depot_peak_bytes = depot->peak_bytes();
  res.pfs_bytes_written = w.pfs.bytes_written();
  res.pfs_bytes_read = w.pfs.bytes_read();
  // Every shard runs lineage recovery over its own records: the totals
  // are field-wise sums, with the per-shard breakdown kept for reporting.
  res.recovery = sched.recovery();
  for (int s = 0; s < sched.num_shards(); ++s)
    res.shard_recovery.push_back(sched.shard(s).recovery());
  res.workers_killed = w.injector ? w.injector->kills_performed() : 0;
  // Threaded backend: fold the executor's contention counters (strand
  // queue depths, post->run latency) into the run's metrics.
  if (w.thr_engine) w.thr_engine->publish_metrics();
  if (recorder) obs::gauge_set("trace.dropped_events_final",
                               static_cast<double>(recorder->dropped()));
  res.metrics = registry.snapshot();
  res.bytes_moved = res.metrics.counter(obs::kBytesMoved);
  res.bytes_referenced = res.metrics.counter(obs::kBytesReferenced);
  res.trace = std::move(recorder);
  return res;
}

}  // namespace deisa::harness
