// Experiment harness: one entry point per workflow pipeline of the
// paper's evaluation (post hoc with old/new IPCA, DEISA1/2/3), shared by
// every figure bench. A scenario is fully described by ScenarioParams;
// run_scenario() builds the simulated cluster, places the actors exactly
// as §3.3.2 describes (scheduler on the first allocation node, client on
// the second, workers next, simulation ranks last, two ranks per node),
// drives the workflow to completion, and returns per-rank per-iteration
// timings plus scheduler counters.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "deisa/core/contract.hpp"
#include "deisa/dts/runtime.hpp"
#include "deisa/fault/fault.hpp"
#include "deisa/io/pfs.hpp"
#include "deisa/ml/insitu.hpp"
#include "deisa/net/cluster.hpp"
#include "deisa/obs/metrics.hpp"
#include "deisa/obs/trace.hpp"
#include "deisa/util/stats.hpp"

namespace deisa::harness {

enum class Pipeline {
  kPosthocOldIpca,  // DASK: write to PFS, read back, per-batch IPCA
  kPosthocNewIpca,  // DASK: write to PFS, read back, single-graph IPCA
  kDeisa1,          // HiPC'21 prototype: per-step scatter + queues + 5 s hb
  kDeisa2,          // this paper, 60 s heartbeats
  kDeisa3,          // this paper, heartbeats off
};

const char* to_string(Pipeline p);
bool is_posthoc(Pipeline p);

/// Which Executor/Transport backend runs the actor code.
enum class Substrate {
  kSim,      // deterministic virtual-time simulation (all paper figures)
  kThreads,  // real threads + wall clock (rt::ThreadedExecutor)
};

const char* to_string(Substrate s);

struct ScenarioParams {
  // ---- workload geometry ----
  int ranks = 4;
  int ranks_per_node = 2;  // fixed to two in the paper's experiments
  int workers = 2;
  int workers_per_node = 1;
  std::uint64_t block_bytes = 128ull * 1024 * 1024;  // per process
  int timesteps = 10;
  std::size_t n_components = 2;
  /// Fraction of the Y dimension selected by the contract (1.0 = all).
  double contract_fraction = 1.0;
  /// Virtual arrays published per run (multi-array workflows: every rank
  /// pushes a block of each array per timestep and the adaptor fits one
  /// IPCA per array). Requires the external-task pipelines (DEISA2/3).
  int arrays = 1;

  // ---- machine calibration (defaults ≈ Irene skylake + its Lustre) ----
  net::ClusterParams cluster = irene_cluster();
  io::PfsParams pfs;
  dts::SchedulerParams sched = paper_scheduler();
  ml::AnalyticsCostModel analytics;
  /// Effective stencil update rate of the solver (cells/s); chosen so a
  /// 128 MiB block costs ≈ 2.4 s per iteration as in Figure 2a.
  double sim_cell_rate = 7.0e6;
  double worker_heartbeat_interval = 1.0;
  /// Worker-side bound on concurrent peer dependency fetches (1 = the
  /// pre-overlap strictly sequential behavior; see WorkerParams).
  int max_concurrent_fetches = 8;
  /// Data plane: kCopy pushes payload bytes eagerly (dask baseline);
  /// kProxy moves ownership tokens and resolves bytes lazily on first
  /// use (see RuntimeParams::data_plane).
  dts::DataPlane data_plane = dts::DataPlane::kCopy;
  /// Refcount GC: release a key from worker memory once every consumer
  /// task has finished (bounded residency over long runs), including
  /// consumers ingested on other shards. Off by default — incompatible
  /// with lineage recomputation under faults.
  bool release_consumed = false;
  /// Scheduler shards: partition the key space across N scheduler actors
  /// (dts::ShardedScheduler). 1 is bit-identical to the single
  /// scheduler; N > 1 composes with fault plans (shard 0 is the
  /// liveness authority) and with release_consumed (cross-shard
  /// consumer accounting).
  int shards = 1;

  /// Allocation seed: different submissions get different node placements
  /// (the run-to-run variability axis of Figure 5).
  std::uint64_t alloc_seed = 1;

  /// Provenance of generator-built scenarios (src/testkit): the corpus
  /// seed that fully determines these params. Recorded in RunResult,
  /// trace metadata and bench JSON so any corpus failure replays with
  /// `deisa_scenario --scenario-seed=`. 0 = hand-written scenario.
  std::uint64_t scenario_seed = 0;

  /// Functional mode: move real Heat2D data through the whole pipeline
  /// and run the real IPCA math (small problems only).
  bool real_data = false;

  /// Ablation: force per-step graph submission in DEISA2/3 (isolates the
  /// ahead-of-time-graph contribution from the external-task transport).
  bool force_per_step_analytics = false;

  /// Record a full event trace of the run (spans/instants in sim time,
  /// exportable as Chrome trace JSON). Metrics are always collected; the
  /// trace recorder is only attached when this is set.
  bool trace = false;
  /// What to evict when the trace ring fills (kOldest keeps the run's
  /// tail, kNewest freezes its head). Either way `trace.dropped_events`
  /// counts the overflow.
  obs::DropPolicy trace_drop_policy = obs::DropPolicy::kOldest;
  /// Ring-buffer capacity of the trace recorder (bounded memory; oldest
  /// events are evicted beyond this).
  std::size_t trace_capacity = obs::Recorder::kDefaultCapacity;

  /// Fault plan armed against the run (worker kills, message drop/dup,
  /// push delays). With a non-empty plan the scheduler's failure detector
  /// is auto-enabled unless `sched.heartbeat_timeout` was set explicitly.
  fault::FaultPlan faults;

  // ---- execution substrate ----
  /// kSim reproduces the paper's modeled timings deterministically;
  /// kThreads runs the same actor code on real threads (functional
  /// outputs identical, wall-clock timings are not model predictions).
  /// Fault plans require kSim.
  Substrate substrate = Substrate::kSim;
  /// kThreads: worker threads (0 = hardware concurrency).
  int substrate_threads = 0;
  /// kThreads: wall seconds per model second. Scenarios are scripted in
  /// model seconds (solver costs, heartbeat intervals); a small scale
  /// compresses those sleeps so functional runs finish quickly.
  double time_scale = 0.05;

  static net::ClusterParams irene_cluster();
  static dts::SchedulerParams paper_scheduler();
  /// Per-rank local block edge (square blocks of doubles).
  std::int64_t local_edge() const;
  /// Process grid (x fastest), roughly square.
  std::pair<int, int> proc_grid() const;
  /// The virtual array describing the produced temperature field.
  core::VirtualArray virtual_array() const { return virtual_array(0); }
  /// Array `index` of a multi-array workflow (same geometry, distinct
  /// name/key space; index 0 keeps the classic "G_temp" name).
  core::VirtualArray virtual_array(int index) const;
  /// All `arrays` virtual arrays of the run.
  std::vector<core::VirtualArray> virtual_arrays() const;
  int nodes_needed() const;
};

struct RunResult {
  Pipeline pipeline{};
  /// Copied from ScenarioParams: generator seed (0 = hand-written) and
  /// the placement policy the run used — replay provenance.
  std::uint64_t scenario_seed = 0;
  dts::SchedulingPolicy policy = dts::SchedulingPolicy::kLocality;
  /// Per-rank, per-iteration solver compute seconds.
  std::vector<std::vector<double>> sim_compute;
  /// Per-rank, per-iteration data-movement seconds (deisa send or PFS
  /// write, depending on the pipeline).
  std::vector<std::vector<double>> sim_io;
  /// Analytics wall time (contract signed → final result in memory for
  /// deisa; read start → final result for post hoc).
  double analytics_seconds = 0.0;
  /// End of the simulation phase (all ranks done).
  double sim_end = 0.0;
  double total_seconds = 0.0;

  std::uint64_t scheduler_messages = 0;
  std::map<std::string, std::uint64_t> scheduler_messages_by_kind;
  /// Scheduler shards the run used (1 = the single-scheduler layout).
  int shards = 1;
  /// Messages handled by each shard (size == shards; [0] equals
  /// scheduler_messages at shards == 1).
  std::vector<std::uint64_t> shard_messages;
  /// Dependency edges whose producer lives on another shard.
  std::uint64_t shard_remote_edges = 0;
  /// kShardKeyDone notifications forwarded between shards.
  std::uint64_t shard_notify_msgs = 0;
  /// kShardKeyReleased consumer-drain acks forwarded between shards.
  std::uint64_t shard_release_acks = 0;
  std::uint64_t bridge_blocks_sent = 0;
  std::uint64_t bridge_blocks_filtered = 0;
  std::uint64_t network_bytes = 0;
  /// Per-worker CPU busy seconds (observability/calibration).
  std::vector<double> worker_busy_seconds;
  std::vector<std::uint64_t> worker_tasks;
  double scheduler_busy_seconds = 0.0;
  std::uint64_t pfs_bytes_written = 0;
  std::uint64_t pfs_bytes_read = 0;

  // ---- data-plane accounting ----
  /// Payload bytes physically moved through the transport
  /// (dataplane.bytes_moved).
  std::uint64_t bytes_moved = 0;
  /// Payload bytes passed by reference instead of moved
  /// (dataplane.bytes_referenced).
  std::uint64_t bytes_referenced = 0;
  /// Highest per-worker store residency over the run.
  std::uint64_t worker_peak_bytes = 0;
  /// Depot high-water mark (proxy plane; 0 on kCopy).
  std::uint64_t depot_peak_bytes = 0;
  /// Keys dropped by the scheduler's refcount GC.
  std::uint64_t keys_released = 0;

  /// Scheduler-side recovery counters, summed over all shards (all zero
  /// on fault-free runs).
  dts::RecoveryCounters recovery;
  /// Per-shard recovery breakdown (size == shards; [0] equals `recovery`
  /// at shards == 1).
  std::vector<dts::RecoveryCounters> shard_recovery;
  /// Worker crashes actually performed by the fault injector.
  std::uint64_t workers_killed = 0;

  /// Snapshot of every counter/gauge/histogram the run produced.
  obs::MetricsSnapshot metrics;
  /// Event trace of the run (only set when ScenarioParams::trace).
  std::shared_ptr<obs::Recorder> trace;

  // Functional-mode outputs (real_data only).
  std::vector<double> singular_values;
  std::vector<double> explained_variance;

  /// Mean/stddev of per-iteration values over ranks and iterations,
  /// skipping `skip_first` iterations (the paper drops the first post-hoc
  /// iteration, dominated by file creation).
  util::Summary iteration_summary(
      const std::vector<std::vector<double>>& series, int skip_first = 0) const;
  /// Per-rank mean and stddev over iterations (Figure 5 panels).
  std::vector<std::pair<double, double>> per_rank_io() const;
};

/// Run one workflow end to end. Throws on any internal inconsistency.
RunResult run_scenario(Pipeline pipeline, const ScenarioParams& params);

}  // namespace deisa::harness
